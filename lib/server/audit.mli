(** The shadow oracle: continuous empirical competitive-ratio auditing.

    Every [every] freshly stepped slots, the daemon hands the audit a
    copy-out snapshot of its [sample] longest-running sessions — loads
    fed, decisions returned, scenario name.  A background thread
    rebuilds each session's instance (scenario types and costs over the
    observed loads, cost clamped into the scenario horizon exactly as
    {!Session} does), prices the online decisions with
    [Model.Cost.schedule], solves the offline optimum with
    [Offline.Dp.solve_optimal], and publishes:

    - [audit.regret_ratio] (gauge): the worst [online / OPT] over the
      last batch — an empirical sample of the paper's competitive
      ratio, clamped at [1.0] so float noise never reads as beating
      OPT;
    - [audit.regret_abs] (gauge) and [audit.regret_abs_dist] /
      [audit.regret_ratio_dist] (histograms): the absolute gap and the
      cumulative per-session distributions;
    - [audit.lag_rounds] (gauge): slots the daemon stepped while the
      batch waited for the worker — how stale the published ratio is;
    - [audit.runs] / [audit.sessions_audited] / [audit.failures]
      (counters).

    The handoff shares no mutable state: the select loop never blocks
    on a DP solve, and at most one batch is ever queued (a slow worker
    drops stale batches in favour of the newest snapshot).  [~sync]
    runs batches inline on the calling thread — deterministic for
    tests. *)

type t

val create :
  ?sync:bool ->
  every:int ->
  sample:int ->
  stepped_now:(unit -> int) ->
  unit ->
  t
(** [stepped_now] reads the daemon's total-stepped-slots clock (used
    both to schedule batches and to measure lag).  Spawns the worker
    thread unless [sync].  Raises [Invalid_argument] when [every] or
    [sample] is less than 1. *)

val maybe_run : t -> sessions:(unit -> Session.t list) -> unit
(** Called by the daemon after each scheduling round.  When at least
    [every] slots have been stepped since the last audit, snapshots up
    to [sample] sessions from [sessions ()] (only materialised when an
    audit is actually due) and submits the batch — inline in [sync]
    mode, to the worker otherwise. *)

val stop : t -> unit
(** Stop and join the worker (idempotent; no-op in [sync] mode).  A
    queued batch may be dropped. *)

val runs : t -> int
val audited : t -> int

val last_regret_ratio : t -> float
(** Worst [online / OPT] of the last completed batch; [nan] before the
    first one. *)

val last_regret_abs : t -> float

val gauges : t -> (string * (string * string) list * float) list
val counters : t -> (string * int) list
val histograms : t -> (string * Obs.Histogram.export) list
(** The audit's telemetry in the shapes {!Obs.Metrics_export}
    consumes — owned by this audit instance, not the process-wide
    registries, so concurrent daemons in one process (tests) do not
    cross-contaminate. *)
