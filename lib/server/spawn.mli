(** Spawn and tear down a real daemon process.

    The system tests (and the scenario runner) exercise the daemon the
    way production does: a separate [rightsizer serve] process reached
    over the wire protocol, not an in-process {!Daemon.handle} call.
    This module owns the process-management half of that: build the
    [serve] argv from a {!config}, fork/exec it with stdout+stderr
    captured to a log file, wait until the Unix socket actually accepts
    a connection, and stop it — gracefully (SIGTERM, which writes a
    final checkpoint) or hard.

    Every spawned pid is tracked in a process-global registry and
    killed with SIGKILL from an [at_exit] hook, so a failed assertion
    in a test or runner can never leak a background daemon onto a CI
    runner — the guarantee the old shell scripts re-implemented with
    [trap] in every file. *)

type config = {
  bin : string;                   (** path to the rightsizer binary *)
  sock : string;                  (** Unix-domain socket path to serve on *)
  metrics_port : int option;
  checkpoint : string option;
  checkpoint_every : int option;
  resume : string option;
  crash_after : int option;       (** the daemon's deterministic kill -9 stand-in *)
  audit : (int * int) option;     (** --audit-every, --audit-sample *)
  faults : (string * string) list;
      (** [(site, plan)] pairs passed as [--fault site=plan]; plan
          syntax is [nth:N], [every:N] or [prob:P] *)
  fault_seed : int option;
  log_dir : string option;        (** --log-dir: the incremental store *)
  cement_every : int option;
  log : string;                   (** stdout+stderr capture file *)
  extra_args : string list;
}

val config : bin:string -> sock:string -> log:string -> config
(** A config with everything else off. *)

type t

val start : config -> (t, string) result
(** Fork/exec [bin serve ...].  Before forking, orphaned [*.tmp] files
    a killed daemon may have left (the checkpoint's, and any in
    [log_dir] — torn snapshot renames, injected-crash chunk orphans)
    are removed, so a respawn in a reused workdir can never trip over a
    stale partial file.  The daemon is not yet ready — call
    {!wait_ready}. *)

val pid : t -> int

val alive : t -> bool
(** Non-blocking liveness probe (reaps the child when it has exited). *)

val wait_ready : ?timeout_s:float -> t -> (unit, string) result
(** Poll until the daemon's socket accepts a connection (then close the
    probe).  Fails early — with the tail of the log — when the process
    exits before binding, and on timeout (default 10s). *)

val wait_exit : ?timeout_s:float -> t -> (Unix.process_status, string) result
(** Wait (polling) for the process to exit on its own — e.g. after a
    [--crash-after] trip.  Does not signal it. *)

val stop : ?grace_s:float -> t -> Unix.process_status
(** SIGTERM, wait up to [grace_s] (default 10s) for a graceful exit,
    then SIGKILL.  Idempotent once the process is reaped. *)

val log_tail : ?lines:int -> t -> string
(** The last [lines] (default 5) of the daemon's captured output —
    for error messages. *)

val kill_all : unit -> unit
(** SIGKILL every tracked live daemon (the [at_exit] safety net,
    callable from signal handlers too). *)

val pick_free_port : unit -> int
(** Bind 127.0.0.1:0, read the kernel-chosen port, release it.  Racy by
    nature but adequate for tests that start the listener promptly. *)
