(** One served right-sizing session: a named {!Online.Streaming}
    instance plus its decision history.

    A session is created from a {e scenario spec} — the name of a
    built-in {!Sim.Scenarios} entry (the scenario supplies the server
    types and cost functions; its loads are ignored, the client streams
    its own) and an optional hard cap on the number of slots.  The
    scenario's time-independence picks the algorithm: A for
    time-independent costs, B otherwise — exactly the choice
    {!Online.Streaming} offers.

    The decision history makes feeding {e idempotent}: every decision
    ever returned is kept, so a client that re-delivers slots it
    already fed (after a crash on either side) gets the stored
    configurations back, bit-identical, without re-stepping.

    Sessions serialise through {!save}/{!of_sexp} — spec, history and
    the complete streaming state — which is what the daemon's
    [server-sessions] checkpoint aggregates. *)

type spec = {
  scenario : string;
  max_horizon : int option;
  alg : string option;
      (** requested solver name; [None] picks [a] or [b] from the
          scenario's cost structure *)
}

type t

val create : id:string -> spec -> (t, Protocol.error_code * string) result
(** Build a fresh session (0 slots fed).  Fails with
    [Unknown_scenario] when the spec names no registry entry. *)

val id : t -> string
val spec : t -> spec
val alg : t -> string
(** ["a"] or ["b"]. *)

val num_types : t -> int
val fed : t -> int

val feed :
  t -> seq:int -> float array -> (Model.Config.t array, Protocol.error_code * string) result
(** Process the loads for slots [seq, seq + n).  Slots below {!fed} are
    answered from the history ({e after} checking that the stored
    volume matches within nothing — the history answers regardless; a
    client that re-feeds different volumes for old slots gets the
    original decisions); slots at and past {!fed} are stepped.  [seq]
    beyond {!fed} is a gap and fails with [Bad_seq].  On a typed
    streaming error the session survives, the slots before the error
    remain processed, and the error carries {!fed} via the daemon's
    reply. *)

val decisions_from : t -> from_:int -> Model.Config.t array
(** The stored decisions for slots [from_, fed) (fresh arrays). *)

val loads : t -> float array
(** A copy of the volumes fed so far (length {!fed}) — together with
    {!decisions_from} and {!spec}, everything the shadow oracle needs to
    re-cost this session offline. *)

val save : t -> Util.Sexp.t
(** [(session (id ..) (scenario ..) (max-horizon ..)? (history ..) (state ..))] *)

val of_sexp : Util.Sexp.t -> (t, string) result
(** Rebuild a {!save}d session: create from the spec, restore the
    streaming state, reload the history.  The result continues
    decision-for-decision identically to the saved one. *)
