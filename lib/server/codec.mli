(** Length-prefixed framing for the wire protocol.

    A frame is

    {v <decimal payload length> SP <payload bytes> LF v}

    where the payload is one rendered s-expression ({!Protocol}).  The
    ASCII length prefix plus the newline terminator keep the stream
    debuggable with [nc -U] while still letting the reader allocate
    exactly once per frame.

    The decoder is incremental: feed it whatever byte chunks arrive on
    the socket and pull complete frames out as they materialise.  It is
    also defensive — the declared length is validated against
    [max_frame_bytes] {e before} any buffer is sized from it, so a
    corrupt or hostile length prefix cannot trigger an unbounded
    allocation (the same guard {!Util.Snapshot.load} applies to
    checkpoint files), and a malformed prefix or a missing terminator
    is a typed [Error], never an exception. *)

val default_max_frame_bytes : int
(** 16 MiB — generous for any protocol message, tiny next to memory. *)

val encode : Util.Sexp.t -> string
(** Render a payload as one complete frame. *)

type decoder

val decoder : ?max_frame_bytes:int -> unit -> decoder

val feed : decoder -> bytes -> int -> unit
(** [feed d buf n] appends the first [n] bytes of [buf] to the pending
    input.  Raises [Invalid_argument] if [n] is out of range. *)

val feed_string : decoder -> string -> unit

val next : decoder -> (Util.Sexp.t option, string) result
(** Extract the next complete frame: [Ok (Some payload)] when one is
    ready, [Ok None] when more bytes are needed, [Error] when the
    stream is unrecoverably malformed (bad length prefix, frame above
    the size guard, missing terminator, unparseable payload).  After an
    [Error] the decoder is poisoned: every subsequent {!next} returns
    the same error, and the connection should be dropped. *)

val pending_bytes : decoder -> int
(** Bytes buffered but not yet consumed (diagnostics). *)
