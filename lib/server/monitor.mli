(** Client side of the telemetry plane — scrape, digest, render.

    {!scrape} performs a one-shot HTTP/1.0 GET against a daemon's
    [--metrics-port] listener; {!parse} turns the Prometheus body into
    samples; {!row_of} digests them into the operator's row (sessions,
    decisions, latency quantiles reconstructed from the scraped bucket
    series, shadow-oracle regret); {!render} / {!to_json} print it.
    The [rightsizer monitor] subcommand drives this in a loop, passing
    the previous row so decisions/s can be derived from two scrapes. *)

type snap = {
  at : float;  (** client wall clock at scrape time *)
  samples : Obs.Metrics_export.sample list;
}

val scrape : port:int -> (string, string) result
(** Fetch the raw scrape body from [127.0.0.1:port]. *)

val parse : string -> (snap, string) result

val value : snap -> string -> float option
(** First label-free sample with the given name. *)

val quantile : snap -> string -> float -> float option
(** [quantile snap name q]: interpolated quantile reconstructed from
    the [name_bucket] cumulative series, clamped by [name_min] /
    [name_max] when present; [None] when the histogram is absent or
    empty. *)

type row = {
  sessions : float;
  connections : float;
  requests : float;
  decisions : float;
  batches : float;
  p50_req_us : float option;
  p99_req_us : float option;
  p50_batch_us : float option;
  p99_batch_us : float option;
  regret_ratio : float option;
  regret_abs : float option;
  audit_lag : float option;
  audit_runs : float;
  uptime_s : float;
  at : float;
}

val row_of : snap -> row

val rate : ?prev:row -> row -> float option
(** Decisions per second between [prev] and this row; [None] without a
    usable previous row. *)

val render : ?prev:row -> row -> string
(** Multi-line human table. *)

val to_json : ?prev:row -> row -> string
(** Single-line JSON object; absent metrics are [null]. *)
