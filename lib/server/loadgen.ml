module P = Protocol

type target = Client.target = Unix_path of string | Tcp of int

type config = {
  target : target;
  connections : int;
  sessions_per_conn : int;
  slots : int;
  batch : int;
  scenario : string;
  max_horizon : int option;
  seed : int;
  prefix : string;
  out : string option;
  verify : bool;
  oracle_only : bool;
  tolerate_disconnect : bool;
  close_sessions : bool;
}

let default_config =
  { target = Unix_path "rightsizer.sock";
    connections = 1;
    sessions_per_conn = 1;
    slots = 64;
    batch = 8;
    scenario = "cpu-gpu";
    max_horizon = None;
    seed = 1;
    prefix = "lg";
    out = None;
    verify = false;
    oracle_only = false;
    tolerate_disconnect = false;
    close_sessions = false }

type report = {
  decisions : int;
  resumed : int;
  errors : int;
  verify_failures : int;
  failed_connections : int;
  wall_s : float;
  throughput : float;
  p50_ms : float;
  p99_ms : float;
}

let session_id cfg i = Printf.sprintf "%s-%04d" cfg.prefix i

(* A noisy diurnal trace pinned well inside the scenario's capacity, so
   every slot is feasible; deterministic in (seed, session_index). *)
let loads_for cfg ~session_index =
  match Sim.Scenarios.by_name cfg.scenario with
  | None -> invalid_arg ("Loadgen.loads_for: unknown scenario " ^ cfg.scenario)
  | Some mk ->
      let inst = mk None in
      let cap = Model.Instance.capacity_at inst ~time:0 in
      let rng = Util.Prng.create ((cfg.seed * 1_000_003) + session_index) in
      Sim.Workload.diurnal ~noise:0.05 ~rng ~horizon:cfg.slots ~period:24
        ~base:(0.1 *. cap) ~peak:(0.6 *. cap) ()
      |> Sim.Workload.clamp ~lo:0. ~hi:(0.9 *. cap)

(* The sequential oracle: the exact Session the daemon runs, fed the
   exact trace the generator sends. *)
let oracle cfg =
  let n = cfg.connections * cfg.sessions_per_conn in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      let id = session_id cfg i in
      match
        Session.create ~id
          { Session.scenario = cfg.scenario; max_horizon = cfg.max_horizon;
            alg = None }
      with
      | Error (_, msg) -> Error (id ^ ": " ^ msg)
      | Ok s -> (
          match Session.feed s ~seq:0 (loads_for cfg ~session_index:i) with
          | Error (_, msg) -> Error (id ^ ": " ^ msg)
          | Ok configs -> go (i + 1) ((id, configs) :: acc))
  in
  go 0 []

(* --- client plumbing: the shared {!Client}, exception-wrapped so the
   per-connection thread body stays a straight-line loop ------------- *)

exception Client_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Client_error m)) fmt

let ok_or_fail = function Ok v -> v | Error m -> raise (Client_error m)

let send c req = ok_or_fail (Client.send c req)
let recv c = ok_or_fail (Client.recv c)

type conn_out = {
  mutable ok : bool;
  mutable fail_msg : string;
  mutable rows : int;
  mutable resumed : int;
  mutable errs : int;
  lat_h : Obs.Histogram.t;
      (* per-frame latency, us; each connection thread is the single
         writer of its own histogram, merged after the joins *)
  mutable partial : (string array * Model.Config.t array array) option;
      (* per session: per-slot decisions, [||] = not (yet) decided *)
}

let conn_main cfg out ci () =
  try
    let c = ok_or_fail (Client.connect cfg.target) in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        ok_or_fail (Client.hello c);
        let nloc = cfg.sessions_per_conn in
        let gidx k = (ci * nloc) + k in
        let ids = Array.init nloc (fun k -> session_id cfg (gidx k)) in
        let loads =
          Array.init nloc (fun k -> loads_for cfg ~session_index:(gidx k))
        in
        let decided = Array.init nloc (fun _ -> Array.make cfg.slots [||]) in
        out.partial <- Some (ids, decided);
        let seqs = Array.make nloc 0 in
        Array.iter
          (fun id ->
            send c
              (P.Create_session
                 { id; scenario = cfg.scenario; max_horizon = cfg.max_horizon;
                   alg = None });
            match recv c with
            | P.Session { fed; _ } -> out.resumed <- out.resumed + min fed cfg.slots
            | P.Error { msg; _ } -> fail "create-session %s: %s" id msg
            | _ -> fail "unexpected create-session reply")
          ids;
        while Array.exists (fun s -> s < cfg.slots) seqs do
          (* one in-flight frame per unfinished session, pipelined *)
          let sent = ref [] in
          for k = 0 to nloc - 1 do
            if seqs.(k) < cfg.slots then begin
              let n = min cfg.batch (cfg.slots - seqs.(k)) in
              send c
                (P.Feed
                   { id = ids.(k);
                     seq = seqs.(k);
                     loads = Array.sub loads.(k) seqs.(k) n });
              sent := (k, seqs.(k), n, Obs.Span.now_us ()) :: !sent
            end
          done;
          List.iter
            (fun (k, seq, n, t0) ->
              match recv c with
              | P.Decisions { seq = rseq; configs; _ } ->
                  if rseq <> seq || Array.length configs <> n then
                    fail "misaligned decisions for %s (seq %d)" ids.(k) seq;
                  Array.iteri (fun i x -> decided.(k).(seq + i) <- x) configs;
                  seqs.(k) <- seq + n;
                  out.rows <- out.rows + n;
                  Obs.Histogram.observe out.lat_h (Obs.Span.now_us () -. t0)
              | P.Error { code = P.Injected; _ } ->
                  (* frame not advanced: re-sent on the next round *)
                  out.errs <- out.errs + 1;
                  if out.errs > 10_000 then fail "giving up after %d injected faults" out.errs
              | P.Error { code; msg; _ } ->
                  fail "feed %s: %s (%s)" ids.(k) msg (P.error_code_to_string code)
              | _ -> fail "unexpected feed reply")
            (List.rev !sent)
        done;
        if cfg.close_sessions then
          Array.iter
            (fun id ->
              send c (P.Close { id });
              ignore (recv c))
            ids;
        out.ok <- true)
  with
  | Client_error m ->
      out.ok <- false;
      out.fail_msg <- m
  | Unix.Unix_error (e, fn, _) ->
      out.ok <- false;
      out.fail_msg <- fn ^ ": " ^ Unix.error_message e

(* --- aggregation ---------------------------------------------------- *)

(* Trim a per-slot decision array to its decided prefix. *)
let decided_prefix rows =
  let n = Array.length rows in
  let rec len i = if i < n && Array.length rows.(i) > 0 then len (i + 1) else i in
  Array.sub rows 0 (len 0)

let collect_sessions outs =
  let acc = ref [] in
  Array.iter
    (fun o ->
      match o.partial with
      | None -> ()
      | Some (ids, decided) ->
          Array.iteri
            (fun k id -> acc := (id, decided_prefix decided.(k)) :: !acc)
            ids)
    outs;
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

let decisions_to_channel oc sessions =
  List.iter
    (fun (id, rows) ->
      Array.iteri
        (fun slot (x : Model.Config.t) ->
          output_string oc id;
          output_char oc ' ';
          output_string oc (string_of_int slot);
          output_char oc ' ';
          Array.iteri
            (fun j v ->
              if j > 0 then output_char oc ',';
              output_string oc (string_of_int v))
            x;
          output_char oc '\n')
        rows)
    sessions

let write_out path sessions =
  Out_channel.with_open_bin path (fun oc -> decisions_to_channel oc sessions)

let count_verify_failures cfg ~oracle_sessions ~got =
  List.fold_left
    (fun bad (id, rows) ->
      match List.assoc_opt id oracle_sessions with
      | None -> bad + 1
      | Some want ->
          let complete = Array.length rows = cfg.slots in
          let agree =
            Array.length want >= Array.length rows
            && Array.for_all2
                 (fun a b -> a = b)
                 rows
                 (Array.sub want 0 (Array.length rows))
          in
          if complete && agree then bad else bad + 1)
    0 got

let quantile_ms h q =
  if Obs.Histogram.count h = 0 then 0. else Obs.Histogram.quantile h q /. 1000.

let report_to_string r =
  String.concat "\n"
    [ Printf.sprintf "decisions   %d (%d replayed from history)" r.decisions r.resumed;
      Printf.sprintf "wall        %.3f s" r.wall_s;
      Printf.sprintf "throughput  %.0f decisions/s" r.throughput;
      Printf.sprintf "latency     p50 %.3f ms, p99 %.3f ms (per frame)" r.p50_ms r.p99_ms;
      Printf.sprintf "errors      %d injected, %d failed connections, %d verify failures"
        r.errors r.failed_connections r.verify_failures ]

let ( let* ) = Result.bind

let validate cfg =
  if cfg.connections < 1 then Error "loadgen: connections must be >= 1"
  else if cfg.sessions_per_conn < 1 then Error "loadgen: sessions-per-conn must be >= 1"
  else if cfg.slots < 1 then Error "loadgen: slots must be >= 1"
  else if cfg.batch < 1 then Error "loadgen: batch must be >= 1"
  else if Sim.Scenarios.by_name cfg.scenario = None then
    Error ("loadgen: unknown scenario " ^ cfg.scenario)
  else Ok ()

let run cfg =
  let* () = validate cfg in
  let* oracle_sessions =
    if cfg.verify || cfg.oracle_only then
      Result.map_error (fun m -> "loadgen: oracle: " ^ m) (oracle cfg)
    else Ok []
  in
  if cfg.oracle_only then begin
    (match cfg.out with
    | Some path -> write_out path oracle_sessions
    | None -> ());
    let rows = List.fold_left (fun a (_, r) -> a + Array.length r) 0 oracle_sessions in
    Ok
      { decisions = rows; resumed = 0; errors = 0; verify_failures = 0;
        failed_connections = 0; wall_s = 0.; throughput = 0.; p50_ms = 0.;
        p99_ms = 0. }
  end
  else begin
    let outs =
      Array.init cfg.connections (fun _ ->
          { ok = false; fail_msg = ""; rows = 0; resumed = 0; errs = 0;
            lat_h = Obs.Histogram.create (); partial = None })
    in
    let t0 = Unix.gettimeofday () in
    let threads =
      Array.mapi (fun ci out -> Thread.create (conn_main cfg out ci) ()) outs
    in
    Array.iter Thread.join threads;
    let wall_s = Unix.gettimeofday () -. t0 in
    let failed = Array.fold_left (fun a o -> if o.ok then a else a + 1) 0 outs in
    if failed > 0 && not cfg.tolerate_disconnect then
      let msg =
        Array.fold_left
          (fun acc o -> if acc = "" && not o.ok then o.fail_msg else acc)
          "" outs
      in
      Error ("loadgen: " ^ msg)
    else begin
      let got = collect_sessions outs in
      (match cfg.out with Some path -> write_out path got | None -> ());
      let verify_failures =
        if cfg.verify then count_verify_failures cfg ~oracle_sessions ~got else 0
      in
      let decisions = Array.fold_left (fun a o -> a + o.rows) 0 outs in
      let lats = Obs.Histogram.create () in
      Array.iter (fun o -> Obs.Histogram.merge_into ~src:o.lat_h ~dst:lats) outs;
      Ok
        { decisions;
          resumed = Array.fold_left (fun a o -> a + o.resumed) 0 outs;
          errors = Array.fold_left (fun a o -> a + o.errs) 0 outs;
          verify_failures;
          failed_connections = failed;
          wall_s;
          throughput = (if wall_s > 0. then float_of_int decisions /. wall_s else 0.);
          p50_ms = quantile_ms lats 0.5;
          p99_ms = quantile_ms lats 0.99 }
    end
  end
