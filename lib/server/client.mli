(** Synchronous wire-protocol client.

    One framed connection to a daemon: {!connect} dials the target,
    {!hello} pins the protocol version, {!send}/{!recv} move whole
    requests and responses through the {!Codec} framing (kept separate
    so callers can pipeline several in-flight requests on one
    connection), and {!request} is the one-shot pair.  Both the
    {!Loadgen} connection threads and the scenario runner are built on
    this module, so there is exactly one implementation of the client
    side of the protocol.

    All failures — socket errors, a closed connection, malformed
    frames — surface as [Error msg]; the connection should then be
    {!close}d and, if the daemon survived (a dropped connection leaves
    its sessions intact), re-{!connect}ed. *)

type target = Unix_path of string | Tcp of int  (** TCP is loopback *)

type t

val connect : target -> (t, string) result
(** Dial the daemon (no handshake yet).  [Tcp] sets [TCP_NODELAY]. *)

val hello : t -> (unit, string) result
(** Send [(hello (version 1))] and check for [welcome]. *)

val send : t -> Protocol.request -> (unit, string) result
(** Write one framed request (complete; handles short writes). *)

val recv : t -> (Protocol.response, string) result
(** Block for the next framed response. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** {!send} then {!recv}. *)

val close : t -> unit
(** Close the socket (idempotent, never raises). *)
