let default_max_frame_bytes = 16 * 1024 * 1024

let encode payload =
  let body = Util.Sexp.to_string payload in
  Printf.sprintf "%d %s\n" (String.length body) body

(* The pending input lives in one Buffer; [start] is the offset of the
   first unconsumed byte.  Frames are small and arrive fast, so the
   occasional compaction (dropping the consumed prefix once it crosses
   a threshold) keeps the buffer bounded without per-frame copies. *)
type decoder = {
  mutable buf : Buffer.t;
  mutable start : int;
  mutable poisoned : string option;
  max_frame_bytes : int;
}

let decoder ?(max_frame_bytes = default_max_frame_bytes) () =
  { buf = Buffer.create 4096; start = 0; poisoned = None; max_frame_bytes }

let feed d buf n =
  if n < 0 || n > Bytes.length buf then invalid_arg "Codec.feed";
  Buffer.add_subbytes d.buf buf 0 n

let feed_string d s = Buffer.add_string d.buf s

let pending_bytes d = Buffer.length d.buf - d.start

let compact d =
  if d.start > 65536 && d.start * 2 > Buffer.length d.buf then begin
    let rest = Buffer.sub d.buf d.start (Buffer.length d.buf - d.start) in
    let fresh = Buffer.create (max 4096 (String.length rest)) in
    Buffer.add_string fresh rest;
    d.buf <- fresh;
    d.start <- 0
  end

let poison d msg =
  d.poisoned <- Some msg;
  Error msg

(* The longest believable length prefix: 8 digits covers anything under
   the 16 MiB default and then some; a longer digit run is itself
   evidence of a corrupt prefix. *)
let max_prefix_digits = 12

let next d =
  match d.poisoned with
  | Some msg -> Error msg
  | None -> (
      let len = Buffer.length d.buf in
      (* Scan the length prefix without materialising anything. *)
      let rec scan_sp i =
        if i >= len then None
        else if Buffer.nth d.buf i = ' ' then Some i
        else if i - d.start >= max_prefix_digits then Some (-1)
        else scan_sp (i + 1)
      in
      match scan_sp d.start with
      | None -> Ok None (* prefix still incomplete *)
      | Some (-1) -> poison d "frame length prefix too long (corrupt stream)"
      | Some sp -> (
          let digits = Buffer.sub d.buf d.start (sp - d.start) in
          let plausible =
            digits <> "" && String.for_all (fun c -> c >= '0' && c <= '9') digits
          in
          match (if plausible then int_of_string_opt digits else None) with
          | None -> poison d (Printf.sprintf "bad frame length prefix %S" digits)
          | Some n when n > d.max_frame_bytes ->
              (* Checked before any allocation sized from [n]. *)
              poison d
                (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
                   d.max_frame_bytes)
          | Some n ->
              let frame_end = sp + 1 + n in
              if len < frame_end + 1 then Ok None (* payload + LF not yet here *)
              else if Buffer.nth d.buf frame_end <> '\n' then
                poison d "missing frame terminator (corrupt stream)"
              else begin
                let body = Buffer.sub d.buf (sp + 1) n in
                d.start <- frame_end + 1;
                compact d;
                match Util.Sexp.parse body with
                | Ok payload -> Ok (Some payload)
                | Error m -> poison d (Printf.sprintf "unparseable frame payload: %s" m)
              end))
