(** The multi-session right-sizing daemon.

    A single-threaded [select] loop multiplexes any number of client
    connections (Unix-domain and/or loopback TCP) over one global
    session table.  Each scheduling round drains every readable
    connection, then executes the round's requests in three phases:

    + {e early} — [hello], [create-session], [stats];
    + {e step} — all [feed] requests, grouped by session (each
      session's frames in arrival order) and fanned out across a
      {!Util.Pool} when one is configured, so concurrent sessions
      share the persistent domains;
    + {e late} — [snapshot], [close], [shutdown].

    Replies are always written in per-connection arrival order, so a
    client that waits for each reply observes strictly sequential
    semantics.  Sessions belong to the daemon, not to a connection: a
    dropped connection leaves its sessions intact for a later
    [create-session] re-attach.

    Persistence: with a checkpoint path configured, the whole session
    table (specs, decision histories, streaming states) is written
    through {!Util.Snapshot} (kind [server-sessions]) every
    [checkpoint_every] stepped slots and once more on graceful
    shutdown; [create ~resume] reloads it, and every restored session
    continues decision-for-decision identically.

    With [log_dir] set, durability switches to the incremental store
    ({!Store.Log} / {!Store.Cemented}): every round appends one record
    per state transition and fsyncs once, so per-round durability work
    is O(records that round) instead of the snapshot's O(sessions);
    once the tail passes [cement_every] records it is folded into an
    immutable chunk with the table as the new base.  [create ~resume]
    then {e prefers} log recovery (base + tail replay — bit-identical
    to the snapshot path) and falls back to the snapshot when the
    store is empty, marked degraded, or fails; any store failure at
    runtime degrades the daemon back to full-snapshot mode after an
    immediate checkpoint.  The periodic full-table snapshot is skipped
    while the store is active; the graceful-stop snapshot still runs,
    keeping the fallback file fresh.

    Fault sites ({!Util.Faultinj}): [server.accept] (the incoming
    connection is accepted and immediately closed), [server.read] (the
    connection is dropped; its sessions survive), [server.step] (the
    faulted session's frames in that round are answered with an
    [injected] error before any state changes, so the client can
    simply re-send).  All three degrade the one connection or round —
    the daemon never dies.  The store adds [store.append] (the round's
    flush tears and the daemon degrades to snapshot mode),
    [store.cement] (a torn [chunk-*.store.tmp] orphan is left and the
    cement retries at the next threshold crossing) and [store.recover]
    (resume falls back to the snapshot path).

    Telemetry ({!Obs.Counter}, [server.] prefix): [server.accepts],
    [server.requests], [server.decisions], [server.batches],
    [server.batch_size] (summed stepped-session count per round —
    divide by [server.batches] for the mean), [server.faults],
    [server.disconnects], [server.checkpoints], and on graceful stop
    [server.latency_p50_us] / [server.latency_p99_us] so the CLI's
    [--metrics] export carries the latency distribution.  Each step
    phase runs inside a [server.batch] span. *)

type config = {
  unix_path : string option;   (** Unix-domain socket path *)
  tcp_port : int option;       (** TCP port, bound to 127.0.0.1 *)
  pool : Util.Pool.t option;   (** fan step batches out across domains *)
  checkpoint : string option;
  checkpoint_every : int;      (** stepped slots between checkpoints *)
  max_frame_bytes : int;
  max_sessions : int;
  crash_after_slots : int option;
      (** testing hook: [exit 3] mid-loop (no final checkpoint — the
          deterministic stand-in for [kill -9]) once this many slots
          have been stepped *)
  metrics_port : int option;
      (** loopback TCP port serving the Prometheus scrape over one-shot
          HTTP/1.0 exchanges, multiplexed in the same select loop *)
  audit_every : int option;
      (** enable the {!Audit} shadow oracle, auditing every this many
          freshly stepped slots *)
  audit_sample : int;  (** sessions sampled per audit batch *)
  audit_sync : bool;
      (** run audits inline instead of on the worker thread —
          deterministic for tests *)
  log_dir : string option;
      (** directory for the incremental store (tail log + cemented
          chunks); [None] keeps full-snapshot durability *)
  cement_every : int;
      (** fold the tail into a cemented chunk once it holds this many
          fsync'd records *)
}

val default_config : config
(** No listeners, no pool, no checkpointing, no metrics port, no
    auditing ([audit_sample = 4]), [checkpoint_every = 64],
    [max_frame_bytes = Codec.default_max_frame_bytes],
    [max_sessions = 1024], no [log_dir], [cement_every = 4096]. *)

type t

val create : ?resume:string -> config -> (t, string) result
(** Bind the configured listeners (at least one of [unix_path] /
    [tcp_port] is required; an existing socket file is replaced) and,
    with [resume], reload a [server-sessions] checkpoint. *)

val run : t -> unit
(** The blocking serve loop; returns after {!request_stop} (or a
    [shutdown] request), having written a final checkpoint, closed
    every socket and removed the Unix socket file. *)

val request_stop : t -> unit
(** Signal- and thread-safe: the loop exits within its select timeout. *)

val handle : t -> Protocol.request -> Protocol.response
(** Execute one request synchronously against the session table,
    bypassing the sockets and the hello gate — the unit-test and
    bench entry point.  Semantically identical to sending the request
    on an otherwise idle connection. *)

val session_count : t -> int
val stepped_slots : t -> int

val stats : t -> Protocol.stats

val metrics_body : t -> string
(** The full Prometheus-format scrape: the process-wide
    counter/gauge/histogram registries plus the daemon's own series
    (request-latency and batch-duration histograms, session/connection/
    pool-occupancy gauges, checkpoint age, per-session fed-slot
    distribution) and, when auditing is enabled, the shadow oracle's
    regret metrics.  The same body answers the [metrics] protocol
    request and the [--metrics-port] HTTP listener. *)

val audit : t -> Audit.t option
(** The shadow oracle, when [audit_every] is configured. *)

val checkpoint_now : t -> (unit, string) result
(** Write the session-table checkpoint immediately (requires a
    configured checkpoint path). *)
