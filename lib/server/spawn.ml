type config = {
  bin : string;
  sock : string;
  metrics_port : int option;
  checkpoint : string option;
  checkpoint_every : int option;
  resume : string option;
  crash_after : int option;
  audit : (int * int) option;
  faults : (string * string) list;
  fault_seed : int option;
  log_dir : string option;
  cement_every : int option;
  log : string;
  extra_args : string list;
}

let config ~bin ~sock ~log =
  { bin; sock; metrics_port = None; checkpoint = None; checkpoint_every = None;
    resume = None; crash_after = None; audit = None; faults = []; fault_seed = None;
    log_dir = None; cement_every = None; log; extra_args = [] }

type t = {
  cfg : config;
  child : int;
  mutable status : Unix.process_status option;  (* set once reaped *)
}

(* Every live child, so [at_exit] can guarantee nothing leaks.  The
   registry is only touched from the spawning process (fork children
   exec immediately). *)
let registry : (int, unit) Hashtbl.t = Hashtbl.create 8
let at_exit_installed = ref false

let kill_all () =
  Hashtbl.iter
    (fun pid () ->
      try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    registry

let track pid =
  if not !at_exit_installed then begin
    at_exit_installed := true;
    at_exit kill_all
  end;
  Hashtbl.replace registry pid ()

let argv cfg =
  let opt name = function None -> [] | Some v -> [ name; v ] in
  let int_opt name = function None -> [] | Some v -> [ name; string_of_int v ] in
  List.concat
    [ [ cfg.bin; "serve"; "--unix"; cfg.sock ];
      int_opt "--metrics-port" cfg.metrics_port;
      opt "--checkpoint" cfg.checkpoint;
      int_opt "--checkpoint-every" cfg.checkpoint_every;
      opt "--resume" cfg.resume;
      int_opt "--crash-after" cfg.crash_after;
      (match cfg.audit with
      | None -> []
      | Some (every, sample) ->
          [ "--audit-every"; string_of_int every;
            "--audit-sample"; string_of_int sample ]);
      List.concat_map (fun (site, plan) -> [ "--fault"; site ^ "=" ^ plan ]) cfg.faults;
      int_opt "--fault-seed" cfg.fault_seed;
      opt "--log-dir" cfg.log_dir;
      int_opt "--cement-every" cfg.cement_every;
      cfg.extra_args ]

(* A killed daemon can leave torn [*.tmp] files behind — a snapshot
   rename that never happened, or an injected [store.cement] crash's
   orphaned chunk.  They are never valid state, and in a reused workdir
   a stale partial file is a trap for any later scan, so sweep them
   before every (re)spawn. *)
let clean_orphans cfg =
  let rm path = try Sys.remove path with Sys_error _ -> () in
  (match cfg.checkpoint with Some p -> rm (p ^ ".tmp") | None -> ());
  match cfg.log_dir with
  | None -> ()
  | Some dir -> (
      match Sys.readdir dir with
      | exception Sys_error _ -> ()
      | entries ->
          Array.iter
            (fun name ->
              if Filename.check_suffix name ".tmp" then rm (Filename.concat dir name))
            entries)

let start cfg =
  clean_orphans cfg;
  match
    let logfd =
      Unix.openfile cfg.log [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close logfd with Unix.Unix_error _ -> ())
      (fun () ->
        let args = Array.of_list (argv cfg) in
        Unix.create_process cfg.bin args Unix.stdin logfd logfd)
  with
  | pid ->
      track pid;
      Ok { cfg; child = pid; status = None }
  | exception Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "spawn %s: %s %s: %s" cfg.bin fn arg (Unix.error_message e))

let pid t = t.child

let reap t ~block =
  match t.status with
  | Some _ -> ()
  | None -> (
      let flags = if block then [] else [ Unix.WNOHANG ] in
      match Unix.waitpid flags t.child with
      | 0, _ -> ()
      | _, st ->
          t.status <- Some st;
          Hashtbl.remove registry t.child
      | exception Unix.Unix_error (ECHILD, _, _) ->
          (* already reaped elsewhere; forget it *)
          t.status <- Some (Unix.WEXITED 0);
          Hashtbl.remove registry t.child
      | exception Unix.Unix_error (EINTR, _, _) -> ())

let alive t =
  reap t ~block:false;
  t.status = None

let log_tail ?(lines = 5) t =
  match In_channel.with_open_text t.cfg.log In_channel.input_all with
  | exception Sys_error _ -> ""
  | text ->
      let all = String.split_on_char '\n' (String.trim text) in
      let n = List.length all in
      String.concat " | " (List.filteri (fun i _ -> i >= n - lines) all)

let wait_ready ?(timeout_s = 10.) t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll () =
    if not (alive t) then
      Error
        (Printf.sprintf "daemon exited before binding %s (%s)" t.cfg.sock
           (log_tail t))
    else
      match Client.connect (Client.Unix_path t.cfg.sock) with
      | Ok c ->
          Client.close c;
          Ok ()
      | Error _ ->
          if Unix.gettimeofday () > deadline then
            Error
              (Printf.sprintf "daemon did not bind %s within %.0fs (%s)" t.cfg.sock
                 timeout_s (log_tail t))
          else begin
            Unix.sleepf 0.02;
            poll ()
          end
  in
  poll ()

let wait_exit ?(timeout_s = 30.) t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll () =
    reap t ~block:false;
    match t.status with
    | Some st -> Ok st
    | None ->
        if Unix.gettimeofday () > deadline then
          Error (Printf.sprintf "daemon (pid %d) still running after %.0fs" t.child timeout_s)
        else begin
          Unix.sleepf 0.02;
          poll ()
        end
  in
  poll ()

let stop ?(grace_s = 10.) t =
  reap t ~block:false;
  match t.status with
  | Some st -> st
  | None -> (
      (try Unix.kill t.child Sys.sigterm with Unix.Unix_error _ -> ());
      match wait_exit ~timeout_s:grace_s t with
      | Ok st -> st
      | Error _ -> (
          (try Unix.kill t.child Sys.sigkill with Unix.Unix_error _ -> ());
          reap t ~block:true;
          match t.status with Some st -> st | None -> Unix.WSIGNALED Sys.sigkill))

let pick_free_port () =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt fd SO_REUSEADDR true;
      Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, 0));
      match Unix.getsockname fd with
      | ADDR_INET (_, port) -> port
      | ADDR_UNIX _ -> assert false)
