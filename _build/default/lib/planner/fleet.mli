(** Fleet planning: right-size the *fleet*, not just the schedule.

    The paper takes the counts [m_j] as given; a capacity planner must
    choose them.  Given candidate server types with per-unit acquisition
    (capex) costs and a representative workload, this module searches
    for the fleet whose capex plus optimal operating-plus-switching cost
    (the paper's objective, computed by the offline solver) is minimal.

    The search is exact within the given per-type count bounds: it walks
    the count lattice with a best-first expansion and prunes with two
    sound bounds — a fleet is discarded when its capex alone exceeds the
    incumbent, and capacity-infeasible fleets are never evaluated.  For
    the small candidate sets real planning involves (a handful of types,
    tens of units) this is exhaustive-equivalent; a [budget] caps the
    number of DP evaluations for larger spaces (the search then returns
    the best fleet found, flagged as possibly non-optimal). *)

type candidate = {
  server : Model.Server_type.t;  (** the type at its maximum count *)
  capex : float;                 (** acquisition cost per unit, [>= 0] *)
  fn : Convex.Fn.t;              (** operating-cost curve *)
}

type plan = {
  counts : int array;      (** chosen [m_j] per candidate *)
  capex : float;           (** acquisition cost of the fleet *)
  operating : float;       (** optimal schedule cost on the workload *)
  total : float;           (** capex + operating *)
  evaluated : int;         (** fleets priced with the DP *)
  exhaustive : bool;       (** whether the whole lattice was covered *)
}

val optimize : ?budget:int -> candidates:candidate array -> load:float array -> unit -> plan
(** Find the cheapest fleet for the workload.  Raises
    [Invalid_argument] when no in-bounds fleet can carry the peak load,
    when there are no candidates, or when the load is empty.  [budget]
    (default [20_000]) caps DP evaluations. *)

val optimize_robust :
  ?budget:int ->
  ?objective:[ `Worst_case | `Mean ] ->
  candidates:candidate array ->
  scenarios:float array list ->
  unit ->
  plan
(** Robust planning over several workload scenarios (e.g. weekday /
    weekend / growth forecasts): minimise capex plus the worst-case
    (default) or mean optimal operating cost across the scenarios.  The
    fleet must carry every scenario's peak.  [plan.operating] reports
    the aggregated (worst or mean) operating cost. *)
