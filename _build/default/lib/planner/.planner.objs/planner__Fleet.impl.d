lib/planner/fleet.ml: Array Convex Float List Model Offline
