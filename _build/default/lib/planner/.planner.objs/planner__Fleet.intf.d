lib/planner/fleet.mli: Convex Model
