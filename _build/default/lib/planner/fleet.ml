type candidate = { server : Model.Server_type.t; capex : float; fn : Convex.Fn.t }

type plan = {
  counts : int array;
  capex : float;
  operating : float;
  total : float;
  evaluated : int;
  exhaustive : bool;
}

let fleet_capacity candidates counts =
  let acc = ref 0. in
  Array.iteri
    (fun j n -> acc := !acc +. (float_of_int n *. candidates.(j).server.Model.Server_type.cap))
    counts;
  !acc

let operating_cost candidates counts ~load =
  let types =
    Array.mapi
      (fun j c -> Model.Server_type.with_count c.server counts.(j))
      candidates
  in
  let fns = Array.map (fun c -> c.fn) candidates in
  let inst = Model.Instance.make_static ~types ~load:(Array.copy load) ~fns () in
  (Offline.Dp.solve_optimal inst).Offline.Dp.cost

(* Shared search skeleton: [price counts] returns the aggregated
   operating cost of a fleet; [peak] is the capacity every fleet must
   reach. *)
let search ~budget ~candidates ~peak ~price =
  let (candidates : candidate array) = candidates in
  let d = Array.length candidates in
  let maxima = Array.map (fun (c : candidate) -> c.server.Model.Server_type.count) candidates in
  if fleet_capacity candidates maxima < peak then
    invalid_arg "Fleet.optimize: even the maximal fleet cannot carry the peak load";
  let evaluated = ref 0 in
  let best = ref None in
  let exhausted = ref true in
  let counts = Array.make d 0 in
  let rec walk j capex_so_far =
    if !evaluated >= budget then exhausted := false
    else if j = d then begin
      let incumbent = match !best with Some p -> p.total | None -> infinity in
      if capex_so_far < incumbent && fleet_capacity candidates counts >= peak then begin
        incr evaluated;
        let operating = price counts in
        let total = capex_so_far +. operating in
        if total < incumbent then
          best :=
            Some
              { counts = Array.copy counts;
                capex = capex_so_far;
                operating;
                total;
                evaluated = 0;
                exhaustive = false }
      end
    end
    else
      let incumbent = match !best with Some p -> p.total | None -> infinity in
      if capex_so_far >= incumbent then ()
      else
        for n = 0 to maxima.(j) do
          counts.(j) <- n;
          walk (j + 1) (capex_so_far +. (float_of_int n *. candidates.(j).capex));
          counts.(j) <- 0
        done
  in
  walk 0 0.;
  match !best with
  | None -> invalid_arg "Fleet.optimize: no feasible fleet within the bounds"
  | Some p -> { p with evaluated = !evaluated; exhaustive = !exhausted }

let optimize ?(budget = 20_000) ~candidates ~load () =
  let (candidates : candidate array) = candidates in
  if Array.length candidates = 0 then invalid_arg "Fleet.optimize: no candidates";
  if Array.length load = 0 then invalid_arg "Fleet.optimize: empty load";
  Array.iter
    (fun (c : candidate) ->
      if c.capex < 0. then invalid_arg "Fleet.optimize: negative capex")
    candidates;
  let peak = Array.fold_left Float.max 0. load in
  search ~budget ~candidates ~peak ~price:(fun counts ->
      operating_cost candidates counts ~load)

let optimize_robust ?(budget = 20_000) ?(objective = `Worst_case) ~candidates ~scenarios () =
  let (candidates : candidate array) = candidates in
  if Array.length candidates = 0 then invalid_arg "Fleet.optimize_robust: no candidates";
  if scenarios = [] then invalid_arg "Fleet.optimize_robust: no scenarios";
  List.iter
    (fun load ->
      if Array.length load = 0 then invalid_arg "Fleet.optimize_robust: empty scenario")
    scenarios;
  let peak =
    List.fold_left
      (fun acc load -> Float.max acc (Array.fold_left Float.max 0. load))
      0. scenarios
  in
  let price counts =
    let costs = List.map (fun load -> operating_cost candidates counts ~load) scenarios in
    match objective with
    | `Worst_case -> List.fold_left Float.max neg_infinity costs
    | `Mean -> List.fold_left ( +. ) 0. costs /. float_of_int (List.length costs)
  in
  search ~budget ~candidates ~peak ~price
