lib/experiments/figures.ml: Array Buffer Convex Float List Model Offline Online Printf Report String Util
