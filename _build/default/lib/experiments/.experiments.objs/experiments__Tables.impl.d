lib/experiments/tables.ml: Array Convex Float Fractional List Model Offline Online Printf Report Sim Sys Util
