lib/experiments/ablation.ml: Array Convex Float List Model Offline Online Printf Report Sim Sys Util
