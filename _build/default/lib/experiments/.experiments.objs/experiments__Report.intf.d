lib/experiments/report.mli:
