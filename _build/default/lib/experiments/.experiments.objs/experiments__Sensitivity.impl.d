lib/experiments/sensitivity.ml: Array Convex Float List Model Offline Online Printf Report Sim Util
