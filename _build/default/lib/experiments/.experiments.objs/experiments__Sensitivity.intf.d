lib/experiments/sensitivity.mli: Report
