lib/experiments/forecasting.mli: Report
