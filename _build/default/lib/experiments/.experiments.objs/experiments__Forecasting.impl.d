lib/experiments/forecasting.ml: Float Forecast List Model Offline Online Printf Report Sim Util
