lib/experiments/simulation.mli: Report
