lib/experiments/simulation.ml: Array Convex Dcsim Float List Model Offline Printf Report Sim Util
