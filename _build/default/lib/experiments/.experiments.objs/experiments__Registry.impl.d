lib/experiments/registry.ml: Ablation Figures Forecasting List Report Sensitivity Simulation Tables
