lib/experiments/tables.mli: Report
