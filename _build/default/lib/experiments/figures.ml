let st = Model.Server_type.make

(* The single-type instance behind Figures 1 and 2: beta = 5 and idle
   cost 1 give the paper's timer t_j = 5; the load wanders so that the
   optimal-prefix trajectory rises and falls like the figure's staircase. *)
let fig12_instance () =
  let types = [| st ~name:"node" ~count:3 ~switching_cost:5. ~cap:1. () |] in
  let fns = [| Convex.Fn.power ~idle:1. ~coef:1. ~expo:2. |] in
  let load =
    [| 1.; 2.; 1.; 0.5; 0.2; 0.1; 2.5; 3.; 1.; 0.4; 0.1; 0.; 0.; 1.5; 2.; 2.8; 1.;
       0.3; 0.1; 0.; 0.8; 0.2; 0.; 0. |]
  in
  Model.Instance.make_static ~types ~load ~fns ()

let fig1 () =
  let inst = fig12_instance () in
  let horizon = Model.Instance.horizon inst in
  let r = Online.Alg_a.run inst in
  let hat = Array.map (fun x -> x.(0)) r.Online.Alg_a.prefix_last in
  let xa = Model.Schedule.column r.Online.Alg_a.schedule ~typ:0 in
  let dominated = Array.for_all2 (fun a h -> a >= h) xa hat in
  let tbar = match r.Online.Alg_a.runtimes.(0) with Some t -> t | None -> -1 in
  let plot =
    Util.Ascii_plot.step_series
      [ { Util.Ascii_plot.label = "x^A_t (algorithm A)"; glyph = '#'; values = xa };
        { Util.Ascii_plot.label = "x^_t (last state of optimal prefix schedule)";
          glyph = '.';
          values = hat } ]
  in
  let events =
    String.concat "\n"
      (List.map
         (fun (time, _, count) ->
           Printf.sprintf "slot %2d: +%d server(s), powered down after slot %d" time count
             (min (horizon - 1) (time + tbar - 1)))
         r.Online.Alg_a.power_ups)
  in
  { Report.id = "fig1";
    title = "Algorithm A trajectory (one type, t_j = 5)";
    claim = "x^A_t >= x^t_t for all t; every server runs exactly t_j = 5 slots";
    verdict =
      Printf.sprintf "t_j = %d; dominance %s; %d power-up events" tbar
        (if dominated then "holds at every slot" else "VIOLATED")
        (List.length r.Online.Alg_a.power_ups);
    sections =
      [ Report.section ~heading:"load (sparkline)"
          (Util.Ascii_plot.sparkline inst.Model.Instance.load);
        Report.section ~heading:"trajectories" plot;
        Report.section ~heading:"power-up events" events ];
    pass = dominated;
    artifacts =
      [ ( "fig1.svg",
          Util.Svg.step_plot ~title:"Figure 1: algorithm A (t_j = 5)"
            [ { Util.Svg.label = "load lambda_t"; color = Some "#bbbbbb";
                values = Array.copy inst.Model.Instance.load };
              Util.Svg.int_series ~label:"x^_t (optimal prefix end)" hat;
              Util.Svg.int_series ~label:"x^A_t (algorithm A)" xa ] ) ] }

let fig2 () =
  let inst = fig12_instance () in
  let horizon = Model.Instance.horizon inst in
  let r = Online.Alg_a.run inst in
  let blocks = Online.Analysis.blocks_a r ~typ:0 ~horizon in
  let taus = Online.Analysis.special_slots blocks in
  let per = Online.Analysis.blocks_per_special blocks taus in
  let covered = List.fold_left ( + ) 0 per = List.length blocks in
  let buf = Buffer.create 256 in
  List.iteri
    (fun i b ->
      Buffer.add_string buf
        (Printf.sprintf "A_{%d}: [%2d, %2d]  (%d server(s))\n" (i + 1)
           b.Online.Analysis.start b.Online.Analysis.stop b.Online.Analysis.count))
    blocks;
  let tau_line =
    "tau = " ^ String.concat ", " (List.map string_of_int taus)
    ^ "\n|B_k| = " ^ String.concat ", " (List.map string_of_int per)
  in
  { Report.id = "fig2";
    title = "Blocks A_{j,i} and special time slots tau_{j,k}";
    claim = "each block contains exactly one special time slot";
    verdict =
      Printf.sprintf "%d blocks, %d special slots; partition %s" (List.length blocks)
        (List.length taus)
        (if covered then "exact" else "BROKEN");
    sections =
      [ Report.section ~heading:"blocks" (Buffer.contents buf);
        Report.section ~heading:"special slots" tau_line ];
    pass = covered;
    artifacts = [] }

let fig3 () =
  (* beta = 6 with idle costs engineered so W_5 = {1, 2} (paper slots):
     both the group powered up at slot 1 and the one at slot 2 are shut
     down at slot 5. *)
  let idles = [| 2.; 1.; 4.; 1.; 2.; 1.; 1.; 1.; 3.; 1. |] in
  let load = [| 2.; 3.; 0.; 0.; 0.; 0.; 0.; 1.; 0.; 0. |] in
  let types = [| st ~name:"node" ~count:3 ~switching_cost:6. ~cap:1. () |] in
  let fns = Array.map Convex.Fn.const idles in
  let inst =
    Model.Instance.make ~types ~load ~cost:(fun ~time ~typ:_ -> fns.(time)) ()
  in
  let r = Online.Alg_b.run inst in
  let col = Model.Schedule.column r.Online.Alg_b.schedule ~typ:0 in
  let plot =
    Util.Ascii_plot.step_series
      [ { Util.Ascii_plot.label = "x^B_t"; glyph = '#'; values = col } ]
  in
  let w5 =
    List.filter (fun (t, _, _) -> t = 4) r.Online.Alg_b.power_downs
    |> List.fold_left (fun acc (_, _, c) -> acc + c) 0
  in
  let idle_line =
    "l_t   = "
    ^ String.concat " " (Array.to_list (Array.map (Printf.sprintf "%g") idles))
  in
  let events =
    String.concat "\n"
      (List.map
         (fun (t, _, c) -> Printf.sprintf "power-down of %d server(s) at slot %d (paper slot %d)" c t (t + 1))
         r.Online.Alg_b.power_downs)
  in
  { Report.id = "fig3";
    title = "Algorithm B with beta = 6 and time-varying idle costs";
    claim = "W_5 = {1, 2}: the groups powered up at paper slots 1 and 2 shut down at slot 5";
    verdict =
      Printf.sprintf "servers leaving at paper slot 5: %d (expected 3 = group(2) + group(1))" w5;
    sections =
      [ Report.section ~heading:"idle operating costs" idle_line;
        Report.section ~heading:"x^B trajectory" plot;
        Report.section ~heading:"power-down events" events ];
    pass = (w5 = 3);
    artifacts =
      [ ( "fig3.svg",
          Util.Svg.step_plot ~title:"Figure 3: algorithm B (beta = 6)"
            [ { Util.Svg.label = "idle cost l_t"; color = Some "#bbbbbb";
                values = Array.copy idles };
              Util.Svg.int_series ~label:"x^B_t" col ] ) ] }

let fig4 () =
  (* Figure 4's instance: d = 2, T = 2, m = (2, 1); costs chosen so the
     optimal schedule is x_1 = (2, 0), x_2 = (1, 1). *)
  let types =
    [| st ~name:"type1" ~count:2 ~switching_cost:1. ~cap:1. ();
       st ~name:"type2" ~count:1 ~switching_cost:2. ~cap:2. () |]
  in
  let fns =
    [| [| Convex.Fn.affine ~intercept:0.2 ~slope:0.1;
          Convex.Fn.affine ~intercept:3. ~slope:1. |];
       [| Convex.Fn.affine ~intercept:0.2 ~slope:2.;
          Convex.Fn.affine ~intercept:0.1 ~slope:0.05 |] |]
  in
  let inst =
    Model.Instance.make ~types ~load:[| 2.; 3. |]
      ~cost:(fun ~time ~typ -> fns.(time).(typ))
      ()
  in
  let stats = Offline.Graph_paper.stats inst in
  let via_graph = Offline.Graph_paper.solve inst in
  let via_dp = Offline.Dp.solve_optimal inst in
  let agree = Util.Float_cmp.close ~eps:1e-9 via_graph.Offline.Dp.cost via_dp.Offline.Dp.cost in
  let sched_str r =
    String.concat " -> "
      (Array.to_list (Array.map Model.Config.to_string r.Offline.Dp.schedule))
  in
  { Report.id = "fig4";
    title = "Graph representation (d = 2, T = 2, m = (2, 1))";
    claim = "the shortest path from v-up_{1,(0,0)} to v-down_{2,(0,0)} is the optimal schedule (2,0) -> (1,1)";
    verdict =
      Printf.sprintf "graph: %d vertices, %d edges; shortest path %s (cost %.4f), DP %s; %s"
        stats.Offline.Graph_paper.vertices stats.Offline.Graph_paper.edges
        (sched_str via_graph) via_graph.Offline.Dp.cost (sched_str via_dp)
        (if agree then "costs agree" else "COSTS DIFFER");
    sections =
      [ Report.section ~heading:"schedule via explicit graph" (sched_str via_graph);
        Report.section ~heading:"schedule via transform DP" (sched_str via_dp) ];
    pass = (agree && via_graph.Offline.Dp.schedule = [| [| 2; 0 |]; [| 1; 1 |] |]);
    artifacts = [] }

let fig5 () =
  (* gamma = 2, m = 10: build an optimal single-type schedule, the grid
     {0,1,2,4,8,10}, and the witness X' of eq. (18). *)
  let gamma = 2. in
  let types = [| st ~name:"node" ~count:10 ~switching_cost:3. ~cap:1. () |] in
  let fns = [| Convex.Fn.power ~idle:0.6 ~coef:0.8 ~expo:2. |] in
  let load =
    [| 2.; 3.; 5.; 7.; 9.; 9.5; 8.; 6.; 4.; 2.; 1.; 0.5; 1.; 3.; 6.; 8.; 9.; 7.; 4.; 1. |]
  in
  let inst = Model.Instance.make_static ~types ~load ~fns () in
  let opt = Offline.Dp.solve_optimal inst in
  let grid _ = Offline.Grid.power ~gamma [| 10 |] in
  let witness = Offline.Approx_witness.build ~gamma ~grid opt.Offline.Dp.schedule in
  let ok =
    Offline.Approx_witness.invariant_holds ~gamma ~opt:opt.Offline.Dp.schedule ~witness
  in
  let approx = Offline.Dp.solve_approx ~eps:((2. *. gamma) -. 2.) inst in
  let wit_cost = Model.Cost.schedule inst witness in
  let band =
    Array.map
      (fun x -> min 10 (int_of_float (Float.floor (3. *. float_of_int x.(0)))))
      opt.Offline.Dp.schedule
  in
  let plot =
    Util.Ascii_plot.step_series
      [ { Util.Ascii_plot.label = "band top: min(m, 3 x*_t)"; glyph = '.'; values = band };
        { Util.Ascii_plot.label = "x'_t (witness on {0,1,2,4,8,10})"; glyph = '#';
          values = Model.Schedule.column witness ~typ:0 };
        { Util.Ascii_plot.label = "x*_t (optimal)"; glyph = 'o';
          values = Model.Schedule.column opt.Offline.Dp.schedule ~typ:0 } ]
  in
  { Report.id = "fig5";
    title = "Construction of X' (gamma = 2, m = 10)";
    claim = "X' stays within [x*, min(m, 3 x*)] and C(X^gamma) <= C(X') <= 3 C(X*)";
    verdict =
      Printf.sprintf
        "invariant %s; C(X*) = %.3f, C(X^gamma) = %.3f, C(X') = %.3f, 3 C(X*) = %.3f"
        (if ok then "holds" else "VIOLATED")
        opt.Offline.Dp.cost approx.Offline.Dp.cost wit_cost (3. *. opt.Offline.Dp.cost);
    sections = [ Report.section ~heading:"schedules" plot ];
    pass =
      (ok
      && approx.Offline.Dp.cost <= wit_cost +. 1e-6
      && wit_cost <= (3. *. opt.Offline.Dp.cost) +. 1e-6);
    artifacts =
      [ ( "fig5.svg",
          Util.Svg.step_plot ~title:"Figure 5: witness X' (gamma = 2, m = 10)"
            [ Util.Svg.int_series ~label:"band top min(m, 3 x*)" ~color:"#bbbbbb" band;
              Util.Svg.int_series ~label:"x* (optimal)"
                (Model.Schedule.column opt.Offline.Dp.schedule ~typ:0);
              Util.Svg.int_series ~label:"x' (witness)"
                (Model.Schedule.column witness ~typ:0) ] ) ] }
