(** Experiment reports: structured output shared by the CLI, the
    benchmark harness, and [EXPERIMENTS.md].  Each experiment renders a
    report with a headline verdict so a reader can scan paper-claim vs
    measurement at a glance. *)

type section = {
  heading : string;
  body : string;  (** preformatted text: a table or an ASCII plot *)
}

type t = {
  id : string;          (** e.g. ["fig1"], ["thm8"] *)
  title : string;       (** what the paper artifact shows *)
  claim : string;       (** the paper's claim being reproduced *)
  verdict : string;     (** the measured outcome, one line *)
  sections : section list;
  artifacts : (string * string) list;
      (** extra files to write alongside the text report when exporting
          (filename, content) — e.g. SVG renderings of the figures *)
  pass : bool;
      (** the machine-checked verdict: [true] when every claim the
          experiment verifies held in this run.  [rightsizer verify]
          asserts the conjunction over all experiments. *)
}

val make :
  id:string ->
  title:string ->
  claim:string ->
  verdict:string ->
  ?artifacts:(string * string) list ->
  ?pass:bool ->
  section list ->
  t
(** Constructor; [artifacts] defaults to empty, [pass] to [true]. *)

val section : heading:string -> string -> section

val to_string : t -> string
(** Render the whole report as plain text. *)

val to_markdown : t -> string
(** Render as a markdown section (tables/plots in code fences) — the
    building block of [rightsizer report]. *)

val print : t -> unit
