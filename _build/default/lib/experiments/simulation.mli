(** Discrete-event validation of the paper's modelling assumptions:

    - with zero boot delays the simulated energy-plus-switching equals
      the analytic cost [C(X)] exactly;
    - with realistic boot delays the instantaneous-switching assumption
      is probed: unserved volume and extra energy per delay;
    - the paper's algorithm compared, in simulation, against the
      threshold autoscaler and static peak provisioning every cloud
      actually runs. *)

val run : unit -> Report.t
