type section = { heading : string; body : string }

type t = {
  id : string;
  title : string;
  claim : string;
  verdict : string;
  sections : section list;
  artifacts : (string * string) list;
  pass : bool;
}

let make ~id ~title ~claim ~verdict ?(artifacts = []) ?(pass = true) sections =
  { id; title; claim; verdict; sections; artifacts; pass }

let section ~heading body = { heading; body }

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "=== [%s] %s ===\n" t.id t.title);
  Buffer.add_string buf (Printf.sprintf "Paper claim : %s\n" t.claim);
  Buffer.add_string buf (Printf.sprintf "Measured    : %s\n" t.verdict);
  Buffer.add_string buf (Printf.sprintf "Check       : %s\n" (if t.pass then "PASS" else "FAIL"));
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "\n--- %s ---\n%s\n" s.heading s.body))
    t.sections;
  Buffer.contents buf

let print t = print_string (to_string t)

let to_markdown t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "## `%s` — %s\n\n" t.id t.title);
  Buffer.add_string buf (Printf.sprintf "**Paper claim.** %s\n\n" t.claim);
  Buffer.add_string buf
    (Printf.sprintf "**Measured.** %s — check **%s**.\n\n" t.verdict
       (if t.pass then "PASS" else "FAIL"));
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "*%s*\n\n```\n%s\n```\n\n" s.heading s.body))
    t.sections;
  Buffer.contents buf
