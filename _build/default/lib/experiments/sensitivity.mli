(** Sensitivity analysis: how algorithm A's empirical competitive ratio
    responds to the two quantities its analysis pivots on — the
    switching-to-idle cost ratio [beta / l] (the ski-rental break-even)
    and the volatility of the load.  The worst-case bound [2d + 1] is
    flat; the measured surface shows where real instances sit under it. *)

val run : unit -> Report.t
