(** Predictions experiment (related work [16, 25]): how accurate are the
    classic forecasters on each trace family, and how much of the
    oracle-lookahead advantage does an *honest* (forecast-driven)
    receding-horizon planner retain compared to the paper's
    guarantee-backed algorithm A? *)

val run : unit -> Report.t
