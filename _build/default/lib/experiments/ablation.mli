(** Ablations of the implementation's design choices (not paper claims):

    - the dispatch solver's fast paths (golden section for [d <= 2])
      versus the general KKT water-filling and the greedy oracle;
    - the ramp-transform DP versus the literal explicit graph of
      Section 4.1;
    - the scalable online mode (reduced power-of-gamma grid inside the
      prefix engine) versus the exact dense grid. *)

val run : unit -> Report.t
