(** Measured tables for the paper's theorems.  The paper proves
    worst-case bounds; each experiment measures the empirical competitive
    or approximation ratio over instance families and reports it next to
    the proven bound (measured <= bound must hold on every instance; the
    gap shows the bounds' slack on non-adversarial inputs). *)

val thm8 : unit -> Report.t
(** Theorem 8 — algorithm A is [(2d+1)]-competitive: ratios over random
    time-independent instances and the named scenarios, for
    [d in {1, 2, 3}]. *)

val cor9 : unit -> Report.t
(** Corollary 9 — ratio [2d] for load- and time-independent costs. *)

val thm13 : unit -> Report.t
(** Theorem 13 — algorithm B is [(2d+1+c(I))]-competitive on
    time-dependent instances; reports the measured [c(I)] per family. *)

val thm15 : unit -> Report.t
(** Theorem 15 — algorithm C is [(2d+1+eps)]-competitive; sweeps
    [eps in {1, 0.5, 0.1}] and confirms [c(I~) <= eps]. *)

val thm21 : unit -> Report.t
(** Theorem 21 — the [(1+eps)]-approximation: cost ratio vs the exact
    optimum and runtime/state-count scaling in [eps] and [m]. *)

val thm22 : unit -> Report.t
(** Theorem 22 — time-varying data-center sizes: the approximation on
    the maintenance/expansion scenario. *)

val chasing : unit -> Report.t
(** Related-work example — [Omega(2^d / d)] lower bound for general
    discrete convex function chasing, simulated for [d in {2..12}]. *)

val lower_bound : unit -> Report.t
(** The [2d] lower-bound probe of [5]: resonant-burst adversaries per
    dimension, measured ratio of algorithm A vs the [2d] bound. *)

val baselines : unit -> Report.t
(** Motivation table — OPT, algorithm A, the randomised variant, LCP-1d
    where applicable, and the operating-practice baselines on the
    CPU+GPU diurnal scenario. *)

val fractional : unit -> Report.t
(** Extension — the fractional setting of the related work: integrality
    gap on homogeneous instances, fractional LCP's empirical ratio, and
    the paper's ceiling-rounding blow-up example. *)

val geo : unit -> Report.t
(** Extension — a geographic-load-balancing flavoured instance (related
    work [26, 22]): two regions as server types with phase-shifted
    electricity prices; measures where capacity runs. *)

val randomized : unit -> Report.t
(** Extension — deterministic vs randomised power-down on adversarial
    bursts: expected cost over seeds, per [d]. *)
