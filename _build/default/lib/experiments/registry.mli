(** Index of every reproducible artifact: figure ids, theorem tables and
    extension experiments, with one runner per id.  The CLI and the
    benchmark executable both dispatch through this list, so
    [EXPERIMENTS.md], [rightsizer] and [bench/main.exe] cannot drift
    apart. *)

type entry = {
  id : string;
  kind : [ `Figure | `Table | `Extension ];
  description : string;
  run : unit -> Report.t;
}

val all : entry list
(** Every experiment, in paper order. *)

val find : string -> entry option
(** Look an experiment up by id. *)

val ids : unit -> string list
