(** Reproductions of the paper's five figures, regenerated from real
    algorithm runs (not drawings): each returns a {!Report.t} containing
    ASCII renderings plus a machine-checked verdict that the depicted
    property holds in the run. *)

val fig1 : unit -> Report.t
(** Figure 1 — algorithm A on one server type with [t_j = 5]: the
    optimal-prefix trajectory [x^t_{t,j}] vs the algorithm's [x^A_{t,j}];
    every power-up runs exactly 5 slots and [x^A >= x^] throughout. *)

val fig2 : unit -> Report.t
(** Figure 2 — the blocks [A_{j,i}] of the same run and the special time
    slots [tau_{j,k}]: consecutive special slots are [>= t_j] apart and
    each block contains exactly one. *)

val fig3 : unit -> Report.t
(** Figure 3 — algorithm B with [beta_j = 6] and time-varying idle costs:
    the runtimes [t_{t,j}] and the power-down sets [W_t]; reproduces
    [W_5 = {1, 2}] (both early groups shut down at slot 5). *)

val fig4 : unit -> Report.t
(** Figure 4 — the graph representation on [d = 2, T = 2, m = (2, 1)]:
    24 vertices; the shortest path equals the optimal schedule
    [x_1 = (2,0), x_2 = (1,1)]. *)

val fig5 : unit -> Report.t
(** Figure 5 — the witness schedule [X'] for [gamma = 2, m_j = 10] on the
    grid [{0,1,2,4,8,10}]: [X'] stays inside the band from the optimal
    count up to [min(m, 3 * optimal)] (invariant (19)). *)
