type job = { arrival : int; volume : float }

type t = job array

let of_volumes loads =
  let jobs = ref [] in
  Array.iteri
    (fun arrival volume ->
      if volume > 0. then jobs := { arrival; volume } :: !jobs)
    loads;
  Array.of_list (List.rev !jobs)

let poisson ~rng ~horizon ~rate ~mean_volume =
  if rate < 0. || mean_volume <= 0. then invalid_arg "Job_trace.poisson: bad parameters";
  let jobs = ref [] in
  for arrival = 0 to horizon - 1 do
    (* Geometric number of arrivals with mean [rate]: same first moment
       as a Poisson clock, cheap to sample exactly. *)
    let p = 1. /. (1. +. rate) in
    let rec arrivals n = if Util.Prng.float rng 1. < p then n else arrivals (n + 1) in
    let n = arrivals 0 in
    for _ = 1 to n do
      let volume = Util.Prng.exponential rng ~rate:(1. /. mean_volume) in
      jobs := { arrival; volume } :: !jobs
    done
  done;
  Array.of_list (List.rev !jobs)

let volumes trace ~horizon =
  let out = Array.make horizon 0. in
  Array.iter
    (fun { arrival; volume } ->
      if arrival >= 0 && arrival < horizon then out.(arrival) <- out.(arrival) +. volume)
    trace;
  out

let total_volume trace = Array.fold_left (fun acc j -> acc +. j.volume) 0. trace

let count = Array.length
