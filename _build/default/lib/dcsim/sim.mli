(** Discrete-event execution of right-sizing decisions.

    The paper's model assumes instantaneous power-ups and per-slot
    aggregate volumes; this simulator relaxes both so the abstraction
    can be stress-tested:

    - a powered-up server of type [j] spends [boot_delay.(j)] slots
      *booting* — drawing idle power, providing no capacity — before it
      becomes active (the paper's model is [boot_delay = 0]);
    - volume the active fleet cannot absorb is either dropped (recorded
      as [unserved]) or carried as backlog into the next slot;
    - energy is metered with the same dispatch machinery the analytic
      cost uses, so with zero boot delays and no overload the simulated
      energy-plus-switching equals [Cost.schedule] exactly (a tested
      equivalence).

    Decisions come from a fixed schedule or from a {!controller} that
    only observes the past — the online algorithms wrap into controllers
    in {!Controllers}. *)

type config = {
  boot_delay : int array;  (** per-type boot slots ([0] = paper model) *)
  carry_backlog : bool;
      (** overflow volume carries to the next slot ([true]) or is
          dropped ([false]) *)
  failures : failure_model option;
      (** random server crashes ([None] = the paper's reliable fleet) *)
}

and failure_model = {
  rate : float;        (** per active server, per slot crash probability *)
  repair_slots : int;  (** slots a crashed server is unavailable *)
  seed : int;          (** deterministic failure stream *)
}
(** Failure injection: each active server independently crashes with
    probability [rate] per slot; a crashed unit is unavailable for
    [repair_slots] slots and then rejoins the inactive pool.  The crash
    itself costs nothing, but re-powering replacement capacity pays
    [beta] as usual — so flaky fleets punish policies that run close to
    the edge. *)

val ideal : d:int -> config
(** Zero boot delays, dropped overflow, no failures — the paper's
    assumptions. *)

type metrics = {
  energy : float;          (** operating cost actually drawn *)
  energy_by_type : float array;
      (** the same energy attributed per type (dispatch split + boot
          idle); sums to [energy] *)
  switching : float;       (** power-up cost actually paid *)
  served : float;          (** volume processed *)
  unserved : float;        (** volume dropped (never served) *)
  backlog_peak : float;    (** largest carried backlog *)
  power_up_events : int;   (** individual servers commanded up *)
  failures : int;          (** servers crashed by the failure model *)
  mean_utilisation : float;
      (** mean over busy slots of served volume / active capacity *)
}

val run_schedule : ?config:config -> Model.Instance.t -> Model.Schedule.t -> metrics
(** Execute a precomputed schedule against the instance's own loads.
    The schedule gives the *commanded* targets; with boot delays the
    realised active counts lag behind. *)

type controller = time:int -> load:float -> backlog:float -> Model.Config.t
(** An online decision rule: sees the current slot index, the newly
    arrived volume and the current backlog, and returns the commanded
    configuration.  Implementations keep their own state in the
    closure. *)

val run_controller :
  ?config:config -> Model.Instance.t -> controller -> metrics * Model.Schedule.t
(** Drive a controller slot by slot; returns the metrics and the
    commanded schedule (for offline inspection). *)

type wait_stats = {
  mean_wait : float;  (** mean slots between arrival and completion *)
  p95_wait : float;
  max_wait : float;
  completed : int;    (** jobs fully served within the horizon *)
  abandoned : int;    (** jobs still queued at the horizon *)
}

val run_trace :
  ?config:config ->
  Model.Instance.t ->
  Job_trace.t ->
  controller ->
  metrics * wait_stats * Model.Schedule.t
(** Job-level execution: the trace's jobs queue FIFO and are served by
    the active capacity; a job's wait is the slot it finishes minus the
    slot it arrived.  Jobs are never dropped ([carry_backlog] is
    implied); what the horizon leaves unfinished is reported as
    [unserved] volume and [abandoned] jobs.  The instance's [load]
    array should be the trace's aggregation (see
    {!Job_trace.volumes}) so the controller and the energy model see
    consistent demand. *)
