(** Ready-made controllers for {!Sim.run_controller}.

    The paper's online algorithms become controllers by streaming the
    simulator's clock into their prefix engines (they still only read
    the past, so the wrapping preserves their online nature); the
    practical comparison points are the threshold autoscaler every cloud
    actually runs, and static peak provisioning. *)

val of_schedule : Model.Schedule.t -> Sim.controller
(** Replay a precomputed schedule, ignoring observations. *)

val alg_a : Model.Instance.t -> Sim.controller
(** Algorithm A as a stateful controller (time-independent instances).
    Raises when stepped out of order — the simulator always steps
    forward, so this only triggers on misuse. *)

val alg_b : Model.Instance.t -> Sim.controller
(** Algorithm B as a stateful controller (requires positive switching
    costs). *)

val hysteresis : up:float -> down:float -> Model.Instance.t -> Sim.controller
(** The classic threshold autoscaler: scale out when utilisation exceeds
    [up], scale in below [down] ([0 <= down < up <= 1]); always keeps
    enough capacity for the observed load plus backlog.  Servers are
    added cheapest-idle-per-capacity first and removed in the reverse
    order. *)

val static_peak : Model.Instance.t -> Sim.controller
(** Always-on provisioning for the instance's peak load (computed from
    the declared loads — static planning, not an online decision). *)
