lib/dcsim/sim.mli: Job_trace Model
