lib/dcsim/job_trace.ml: Array List Util
