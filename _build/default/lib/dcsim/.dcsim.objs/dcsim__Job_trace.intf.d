lib/dcsim/job_trace.mli: Util
