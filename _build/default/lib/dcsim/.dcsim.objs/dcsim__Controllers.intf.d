lib/dcsim/controllers.mli: Model Sim
