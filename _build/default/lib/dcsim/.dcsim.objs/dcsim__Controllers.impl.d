lib/dcsim/controllers.ml: Array Float List Model Online
