lib/dcsim/sim.ml: Array Float Job_trace List Model Queue Util
