(** Job-level workload traces for the discrete-event simulator.

    The paper models one aggregate volume [lambda_t] per slot; real
    clusters see many jobs whose per-slot sums form that volume.  A
    trace here is a bag of (arrival slot, volume) jobs; aggregating it
    recovers the paper's [lambda] so the same instance can drive both
    the analytic solvers and the simulator. *)

type job = { arrival : int; volume : float }

type t = job array

val of_volumes : float array -> t
(** One aggregate job per slot (slots with zero volume emit no job). *)

val poisson :
  rng:Util.Prng.t -> horizon:int -> rate:float -> mean_volume:float -> t
(** Per slot, a Poisson-ish number of jobs (geometric approximation with
    the same mean [rate]), each with an exponential volume of mean
    [mean_volume].  Deterministic given the PRNG. *)

val volumes : t -> horizon:int -> float array
(** Aggregate per-slot volumes ([lambda_t]); jobs arriving at or beyond
    [horizon] are ignored. *)

val total_volume : t -> float

val count : t -> int
