let of_schedule schedule ~time ~load:_ ~backlog:_ = Array.copy schedule.(time)

(* The paper's algorithms as controllers: the shared prefix engine and
   power-down state machine (Online.Stepper) driven by the simulator's
   forward clock. *)
let of_stepper make inst =
  let engine = Online.Prefix_opt.create inst in
  let stepper = make inst in
  let clock = ref 0 in
  fun ~time ~load:_ ~backlog:_ ->
    if time <> !clock then invalid_arg "Controllers: stepped out of order";
    incr clock;
    let { Online.Prefix_opt.last = hat; _ } = Online.Prefix_opt.step engine in
    Online.Stepper.step stepper ~time ~hat

let alg_a inst = of_stepper Online.Stepper.alg_a inst
let alg_b inst = of_stepper Online.Stepper.alg_b inst

(* Order types by idle cost per unit of capacity — the scale-out order
   of the threshold controller. *)
let efficiency_order inst ~time =
  let d = Model.Instance.num_types inst in
  let keyed =
    List.init d (fun typ ->
        let st = inst.Model.Instance.types.(typ) in
        (Model.Instance.idle_cost inst ~time ~typ /. st.Model.Server_type.cap, typ))
  in
  List.map snd (List.sort compare keyed)

let hysteresis ~up ~down inst =
  if not (0. <= down && down < up && up <= 1.) then
    invalid_arg "Controllers.hysteresis: need 0 <= down < up <= 1";
  let d = Model.Instance.num_types inst in
  let types = inst.Model.Instance.types in
  let x = Array.make d 0 in
  fun ~time ~load ~backlog ->
    let demand = load +. backlog in
    let capacity () = Model.Config.capacity types x in
    let order = efficiency_order inst ~time in
    (* Scale out while over the upper threshold (or infeasible). *)
    let needs_more () =
      let c = capacity () in
      c < demand || (c > 0. && demand /. c > up) || (c = 0. && demand > 0.)
    in
    let can_add typ = x.(typ) < types.(typ).Model.Server_type.count in
    let rec grow () =
      if needs_more () then
        match List.find_opt can_add order with
        | Some typ ->
            x.(typ) <- x.(typ) + 1;
            grow ()
        | None -> () (* fleet exhausted; serve what we can *)
    in
    grow ();
    (* Scale in while below the lower threshold, never breaking
       feasibility for the current demand. *)
    let removable typ =
      x.(typ) > 0
      && capacity () -. types.(typ).Model.Server_type.cap >= demand
      &&
      let c = capacity () -. types.(typ).Model.Server_type.cap in
      c = 0. || demand /. c <= up
    in
    let rec shrink () =
      let c = capacity () in
      if c > 0. && demand /. c < down then
        match List.find_opt removable (List.rev order) with
        | Some typ ->
            x.(typ) <- x.(typ) - 1;
            shrink ()
        | None -> ()
    in
    shrink ();
    Array.copy x

let static_peak inst =
  let peak = Array.fold_left Float.max 0. inst.Model.Instance.load in
  let d = Model.Instance.num_types inst in
  let types = inst.Model.Instance.types in
  (* Cheapest-idle-first fleet that covers the peak. *)
  let x = Array.make d 0 in
  let order = efficiency_order inst ~time:0 in
  let rec fill () =
    if Model.Config.capacity types x < peak then
      match
        List.find_opt (fun typ -> x.(typ) < types.(typ).Model.Server_type.count) order
      with
      | Some typ ->
          x.(typ) <- x.(typ) + 1;
          fill ()
      | None -> ()
  in
  fill ();
  fun ~time:_ ~load:_ ~backlog:_ -> Array.copy x
