type config = {
  boot_delay : int array;
  carry_backlog : bool;
  failures : failure_model option;
}

and failure_model = { rate : float; repair_slots : int; seed : int }

let ideal ~d = { boot_delay = Array.make d 0; carry_backlog = false; failures = None }

type metrics = {
  energy : float;
  energy_by_type : float array;
  switching : float;
  served : float;
  unserved : float;
  backlog_peak : float;
  power_up_events : int;
  failures : int;
  mean_utilisation : float;
}

type controller = time:int -> load:float -> backlog:float -> Model.Config.t

(* Per-type fleet state: active servers plus a boot queue of
   (slots remaining, count) entries, most recent first. *)
type fleet = { mutable active : int; mutable booting : (int * int) list }

let booting_total fleet = List.fold_left (fun acc (_, c) -> acc + c) 0 fleet.booting

(* Cancel [n] booting servers, newest first; returns how many were
   cancelled (the rest must come out of the active pool). *)
let cancel_boots fleet n =
  let cancelled = ref 0 in
  let rec walk n = function
    | [] -> []
    | (rem, count) :: rest ->
        if n = 0 then (rem, count) :: walk 0 rest
        else if n >= count then begin
          cancelled := !cancelled + count;
          walk (n - count) rest
        end
        else begin
          cancelled := !cancelled + n;
          (rem, count - n) :: walk 0 rest
        end
  in
  fleet.booting <- walk n fleet.booting;
  !cancelled

let validate_config inst config =
  if Array.length config.boot_delay <> Model.Instance.num_types inst then
    invalid_arg "Sim: boot_delay must have one entry per type";
  Array.iter
    (fun b -> if b < 0 then invalid_arg "Sim: negative boot delay")
    config.boot_delay;
  match config.failures with
  | None -> ()
  | Some f ->
      if f.rate < 0. || f.rate > 1. then invalid_arg "Sim: failure rate in [0, 1]";
      if f.repair_slots < 1 then invalid_arg "Sim: repair_slots must be >= 1"

let run ?config inst decide =
  let d = Model.Instance.num_types inst in
  let config = match config with Some c -> c | None -> ideal ~d in
  validate_config inst config;
  let horizon = Model.Instance.horizon inst in
  let types = inst.Model.Instance.types in
  let fleets = Array.init d (fun _ -> { active = 0; booting = [] }) in
  let failure_rng =
    match config.failures with Some f -> Some (Util.Prng.create f.seed) | None -> None
  in
  (* Per type: (slots until repaired, count) of crashed servers. *)
  let repairing = Array.make d [] in
  let failures_total = ref 0 in
  let energy = ref 0. and switching = ref 0. in
  let energy_by_type = Array.make d 0. in
  let served_total = ref 0. and unserved = ref 0. in
  let backlog = ref 0. and backlog_peak = ref 0. in
  let power_up_events = ref 0 in
  let util_sum = ref 0. and util_slots = ref 0 in
  let commanded = Array.make horizon [||] in
  for time = 0 to horizon - 1 do
    (* 1. Boot progress: entries that reach zero become active. *)
    Array.iter
      (fun fleet ->
        let ready = ref 0 in
        fleet.booting <-
          List.filter_map
            (fun (rem, count) ->
              if rem <= 1 then begin
                ready := !ready + count;
                None
              end
              else Some (rem - 1, count))
            fleet.booting;
        fleet.active <- fleet.active + !ready)
      fleets;
    (* 1b. Failures: crashed servers leave the active pool; completed
       repairs return capacity to the (inactive) pool. *)
    (match (config.failures, failure_rng) with
    | Some f, Some rng ->
        Array.iteri
          (fun typ fleet ->
            repairing.(typ) <-
              List.filter_map
                (fun (rem, count) -> if rem <= 1 then None else Some (rem - 1, count))
                repairing.(typ);
            let crashed = ref 0 in
            for _ = 1 to fleet.active do
              if Util.Prng.float rng 1. < f.rate then incr crashed
            done;
            if !crashed > 0 then begin
              fleet.active <- fleet.active - !crashed;
              failures_total := !failures_total + !crashed;
              repairing.(typ) <- (f.repair_slots, !crashed) :: repairing.(typ)
            end)
          fleets
    | _ -> ());
    (* 2. Decision. *)
    let load = inst.Model.Instance.load.(time) in
    let target = decide ~time ~load ~backlog:!backlog in
    if Array.length target <> d then invalid_arg "Sim: controller dimension mismatch";
    commanded.(time) <- Array.copy target;
    (* 3. Reconcile commanded targets with the physical fleet. *)
    for typ = 0 to d - 1 do
      let fleet = fleets.(typ) in
      let present = fleet.active + booting_total fleet in
      let under_repair =
        List.fold_left (fun acc (_, c) -> acc + c) 0 repairing.(typ)
      in
      if target.(typ) > types.(typ).Model.Server_type.count then
        invalid_arg "Sim: target exceeds fleet size";
      let want = min target.(typ) (types.(typ).Model.Server_type.count - under_repair) in
      if want > present then begin
        let up = want - present in
        switching := !switching +. (float_of_int up *. types.(typ).Model.Server_type.switching_cost);
        power_up_events := !power_up_events + up;
        if config.boot_delay.(typ) = 0 then fleet.active <- fleet.active + up
        else fleet.booting <- (config.boot_delay.(typ), up) :: fleet.booting
      end
      else if want < present then begin
        let down = present - want in
        let cancelled = cancel_boots fleet down in
        fleet.active <- fleet.active - (down - cancelled)
      end
    done;
    (* 4. Serve as much of the demand as the active fleet can absorb. *)
    let active = Array.map (fun f -> f.active) fleets in
    let capacity = Model.Config.capacity types active in
    let demand = load +. !backlog in
    let served = Float.min demand capacity in
    let leftover = demand -. served in
    served_total := !served_total +. served;
    if config.carry_backlog then backlog := leftover
    else begin
      unserved := !unserved +. leftover;
      backlog := 0.
    end;
    backlog_peak := Float.max !backlog_peak !backlog;
    if capacity > 0. then begin
      util_sum := !util_sum +. (served /. capacity);
      incr util_slots
    end;
    (* 5. Meter energy: active servers via the dispatch model, booting
       servers draw idle power. *)
    (match Model.Cost.operating_by_type inst ~time ~volume:served active with
    | Some parts ->
        Array.iteri
          (fun typ e ->
            energy := !energy +. e;
            energy_by_type.(typ) <- energy_by_type.(typ) +. e)
          parts
    | None ->
        (* Should not happen: served <= capacity by construction. *)
        energy := !energy +. Model.Cost.operating_volume inst ~time ~volume:served active);
    Array.iteri
      (fun typ fleet ->
        let boots = booting_total fleet in
        if boots > 0 then begin
          let idle = float_of_int boots *. Model.Instance.idle_cost inst ~time ~typ in
          energy := !energy +. idle;
          energy_by_type.(typ) <- energy_by_type.(typ) +. idle
        end)
      fleets
  done;
  ( { energy = !energy;
      energy_by_type;
      switching = !switching;
      served = !served_total;
      unserved = !unserved;
      backlog_peak = !backlog_peak;
      power_up_events = !power_up_events;
      failures = !failures_total;
      mean_utilisation =
        (if !util_slots = 0 then 0. else !util_sum /. float_of_int !util_slots) },
    commanded )

type wait_stats = {
  mean_wait : float;
  p95_wait : float;
  max_wait : float;
  completed : int;
  abandoned : int;
}

let run_trace ?config inst trace controller =
  let d = Model.Instance.num_types inst in
  let config = match config with Some c -> c | None -> ideal ~d in
  let config = { config with carry_backlog = true } in
  validate_config inst config;
  let horizon = Model.Instance.horizon inst in
  (* Jobs per arrival slot, FIFO within a slot. *)
  let arrivals = Array.make horizon [] in
  Array.iter
    (fun { Job_trace.arrival; volume } ->
      if arrival >= 0 && arrival < horizon && volume > 0. then
        arrivals.(arrival) <- volume :: arrivals.(arrival))
    trace;
  Array.iteri (fun t js -> arrivals.(t) <- List.rev js) arrivals;
  (* Queue of (arrival slot, remaining volume), FIFO. *)
  let queue = Queue.create () in
  let waits = ref [] in
  let completed = ref 0 in
  let backlog_of_queue () =
    Queue.fold (fun acc (_, v) -> acc +. v) 0. queue
  in
  (* Same structure as [run], but service drains the FIFO job queue so
     each job's completion slot (hence wait) is observable. *)
  let fleets = Array.init d (fun _ -> { active = 0; booting = [] }) in
  let failure_rng =
    match config.failures with Some f -> Some (Util.Prng.create f.seed) | None -> None
  in
  let repairing = Array.make d [] in
  let failures_total = ref 0 in
  let energy = ref 0. and switching = ref 0. in
  let energy_by_type = Array.make d 0. in
  let served_total = ref 0. in
  let backlog_peak = ref 0. in
  let power_up_events = ref 0 in
  let util_sum = ref 0. and util_slots = ref 0 in
  let commanded = Array.make horizon [||] in
  let types = inst.Model.Instance.types in
  for time = 0 to horizon - 1 do
    Array.iter
      (fun fleet ->
        let ready = ref 0 in
        fleet.booting <-
          List.filter_map
            (fun (rem, count) ->
              if rem <= 1 then begin
                ready := !ready + count;
                None
              end
              else Some (rem - 1, count))
            fleet.booting;
        fleet.active <- fleet.active + !ready)
      fleets;
    (match (config.failures, failure_rng) with
    | Some f, Some rng ->
        Array.iteri
          (fun typ fleet ->
            repairing.(typ) <-
              List.filter_map
                (fun (rem, count) -> if rem <= 1 then None else Some (rem - 1, count))
                repairing.(typ);
            let crashed = ref 0 in
            for _ = 1 to fleet.active do
              if Util.Prng.float rng 1. < f.rate then incr crashed
            done;
            if !crashed > 0 then begin
              fleet.active <- fleet.active - !crashed;
              failures_total := !failures_total + !crashed;
              repairing.(typ) <- (f.repair_slots, !crashed) :: repairing.(typ)
            end)
          fleets
    | _ -> ());
    (* Enqueue this slot's jobs, then decide. *)
    List.iter (fun v -> Queue.add (time, v) queue) arrivals.(time);
    let load = inst.Model.Instance.load.(time) in
    let target = controller ~time ~load ~backlog:(backlog_of_queue () -. load) in
    if Array.length target <> d then invalid_arg "Sim: controller dimension mismatch";
    commanded.(time) <- Array.copy target;
    for typ = 0 to d - 1 do
      let fleet = fleets.(typ) in
      let present = fleet.active + booting_total fleet in
      let under_repair = List.fold_left (fun acc (_, c) -> acc + c) 0 repairing.(typ) in
      if target.(typ) > types.(typ).Model.Server_type.count then
        invalid_arg "Sim: target exceeds fleet size";
      let want = min target.(typ) (types.(typ).Model.Server_type.count - under_repair) in
      if want > present then begin
        let up = want - present in
        switching :=
          !switching +. (float_of_int up *. types.(typ).Model.Server_type.switching_cost);
        power_up_events := !power_up_events + up;
        if config.boot_delay.(typ) = 0 then fleet.active <- fleet.active + up
        else fleet.booting <- (config.boot_delay.(typ), up) :: fleet.booting
      end
      else if want < present then begin
        let down = present - want in
        let cancelled = cancel_boots fleet down in
        fleet.active <- fleet.active - (down - cancelled)
      end
    done;
    (* FIFO service. *)
    let active = Array.map (fun f -> f.active) fleets in
    let capacity = Model.Config.capacity types active in
    let budget = ref capacity in
    let continue_serving = ref true in
    while !continue_serving && not (Queue.is_empty queue) && !budget > 1e-12 do
      let arrival, remaining = Queue.peek queue in
      if remaining <= !budget +. 1e-12 then begin
        ignore (Queue.pop queue);
        budget := !budget -. remaining;
        waits := float_of_int (time - arrival) :: !waits;
        incr completed
      end
      else begin
        (* Partial service: shrink the head job in place. *)
        ignore (Queue.pop queue);
        let rest = remaining -. !budget in
        budget := 0.;
        (* Re-insert at the FRONT: rebuild the queue. *)
        let tail = Queue.copy queue in
        Queue.clear queue;
        Queue.add (arrival, rest) queue;
        Queue.transfer tail queue;
        continue_serving := false
      end
    done;
    let served = capacity -. !budget in
    served_total := !served_total +. served;
    backlog_peak := Float.max !backlog_peak (backlog_of_queue ());
    if capacity > 0. then begin
      util_sum := !util_sum +. (served /. capacity);
      incr util_slots
    end;
    (match Model.Cost.operating_by_type inst ~time ~volume:served active with
    | Some parts ->
        Array.iteri
          (fun typ e ->
            energy := !energy +. e;
            energy_by_type.(typ) <- energy_by_type.(typ) +. e)
          parts
    | None -> energy := !energy +. Model.Cost.operating_volume inst ~time ~volume:served active);
    Array.iteri
      (fun typ fleet ->
        let boots = booting_total fleet in
        if boots > 0 then begin
          let idle = float_of_int boots *. Model.Instance.idle_cost inst ~time ~typ in
          energy := !energy +. idle;
          energy_by_type.(typ) <- energy_by_type.(typ) +. idle
        end)
      fleets
  done;
  let leftover = backlog_of_queue () in
  let abandoned = Queue.length queue in
  let metrics =
    { energy = !energy;
      energy_by_type;
      switching = !switching;
      served = !served_total;
      unserved = leftover;
      backlog_peak = !backlog_peak;
      power_up_events = !power_up_events;
      failures = !failures_total;
      mean_utilisation =
        (if !util_slots = 0 then 0. else !util_sum /. float_of_int !util_slots) }
  in
  let waits = Array.of_list !waits in
  let stats =
    { mean_wait = (if Array.length waits = 0 then 0. else Util.Stats.mean waits);
      p95_wait = (if Array.length waits = 0 then 0. else Util.Stats.quantile waits 0.95);
      max_wait = (if Array.length waits = 0 then 0. else Util.Stats.maximum waits);
      completed = !completed;
      abandoned }
  in
  (metrics, stats, commanded)

let run_schedule ?config inst schedule =
  if Array.length schedule <> Model.Instance.horizon inst then
    invalid_arg "Sim.run_schedule: horizon mismatch";
  let metrics, _ = run ?config inst (fun ~time ~load:_ ~backlog:_ -> schedule.(time)) in
  metrics

let run_controller ?config inst controller = run ?config inst controller
