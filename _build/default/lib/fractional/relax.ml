let refine ~granularity inst =
  if granularity < 1 then invalid_arg "Relax.refine: granularity must be >= 1";
  let k = granularity in
  let kf = float_of_int k in
  let types =
    Array.map
      (fun st ->
        Model.Server_type.make ~name:(st.Model.Server_type.name ^ "-unit")
          ~count:(st.Model.Server_type.count * k)
          ~switching_cost:(st.Model.Server_type.switching_cost /. kf)
          ~cap:(st.Model.Server_type.cap /. kf)
          ())
      inst.Model.Instance.types
  in
  (* f_u(z) = f(k z) / k: convexity, monotonicity and the idle cost
     scaling are preserved by compose_scaled. *)
  let scale fn = Convex.Fn.compose_scaled ~outer:(1. /. kf) ~inner:kf fn in
  let avail ~time ~typ = k * inst.Model.Instance.avail ~time ~typ in
  let load = Array.copy inst.Model.Instance.load in
  if inst.Model.Instance.time_independent then
    (* Preserve the flag so algorithm A remains applicable. *)
    let fns =
      Array.init (Array.length types) (fun typ ->
          scale (inst.Model.Instance.cost ~time:0 ~typ))
    in
    Model.Instance.make_static ~avail ~types ~load ~fns ()
  else
    let cost ~time ~typ = scale (inst.Model.Instance.cost ~time ~typ) in
    Model.Instance.make ~avail ~types ~load ~cost ()

let to_fractional ~granularity schedule =
  let kf = float_of_int granularity in
  Array.map (Array.map (fun u -> float_of_int u /. kf)) schedule

let optimum ~granularity inst =
  (Offline.Dp.solve_optimal (refine ~granularity inst)).Offline.Dp.cost

let integrality_gap ~granularity inst =
  let integral = (Offline.Dp.solve_optimal inst).Offline.Dp.cost in
  integral /. optimum ~granularity inst

let lcp ~granularity inst =
  if Model.Instance.num_types inst <> 1 then
    invalid_arg "Relax.lcp: homogeneous instances only (d = 1)";
  let refined = refine ~granularity inst in
  let schedule = Online.Baselines.lcp_1d refined in
  (to_fractional ~granularity schedule, Model.Cost.schedule refined schedule)

let round_up fractional =
  Array.map (Array.map (fun x -> int_of_float (Float.ceil (x -. 1e-9)))) fractional

let round_randomized ~rng inst fractional =
  if Model.Instance.num_types inst <> 1 then
    invalid_arg "Relax.round_randomized: homogeneous instances only (d = 1)";
  if Array.length fractional <> Model.Instance.horizon inst then
    invalid_arg "Relax.round_randomized: horizon mismatch";
  let cap = inst.Model.Instance.types.(0).Model.Server_type.cap in
  let m = Model.Instance.max_count inst ~typ:0 in
  let theta = Util.Prng.float rng 1. in
  Array.mapi
    (fun t row ->
      if Array.length row <> 1 then
        invalid_arg "Relax.round_randomized: dimension mismatch";
      let needed = int_of_float (Float.ceil ((inst.Model.Instance.load.(t) /. cap) -. 1e-9)) in
      let rounded = int_of_float (Float.ceil (row.(0) -. theta -. 1e-9)) in
      [| min m (max needed (max 0 rounded)) |])
    fractional

let oscillation_cost ~eps ~periods ~beta =
  if eps <= 0. || eps > 1. then invalid_arg "Relax.oscillation_cost: eps in (0, 1]";
  if periods < 1 then invalid_arg "Relax.oscillation_cost: periods >= 1";
  if beta < 0. then invalid_arg "Relax.oscillation_cost: beta >= 0";
  (* Fractional: 1 -> 1+eps costs eps * beta per period; rounded: 1 -> 2
     costs beta per period (power-downs are free in both). *)
  let p = float_of_int periods in
  (p *. eps *. beta, p *. beta)
