(** The fractional setting, by fleet refinement.

    The related literature ([23, 24, 13]; lower bound 2 in [9] and the
    paper's companion work) studies the *fractional* relaxation where the
    number of active servers may be any real.  This module realises that
    relaxation at resolution [1/granularity] by splitting every server of
    type [j] into [granularity] unit-servers with capacity
    [zmax_j / granularity], switching cost [beta_j / granularity] and
    operating cost [f_u(z) = f(granularity * z) / granularity] — a
    faithful rescaling: [u] units running a type-[j] volume [v] cost
    exactly [(u / granularity) * f(v / (u / granularity))], the
    fractional cost of [x = u / granularity] servers.

    The refined problem is again an integral right-sizing instance, so
    the whole library (offline DP, online algorithms, approximation)
    applies to the fractional setting unchanged.  State spaces grow by
    [granularity^d]; intended use is [d = 1] (the homogeneous fractional
    literature) or small [d]. *)

val refine : granularity:int -> Model.Instance.t -> Model.Instance.t
(** The unit-server instance ([granularity >= 1]). *)

val to_fractional : granularity:int -> Model.Schedule.t -> float array array
(** Unit counts back to fractional server counts
    ([x_{t,j} = units_{t,j} / granularity]). *)

val optimum : granularity:int -> Model.Instance.t -> float
(** Cost of an optimal fractional schedule (at the given resolution) —
    a lower bound on the integral optimum as [granularity] grows. *)

val integrality_gap : granularity:int -> Model.Instance.t -> float
(** Integral optimum divided by fractional optimum ([>= 1] up to the
    resolution error). *)

val lcp : granularity:int -> Model.Instance.t -> float array array * float
(** Fractional lazy capacity provisioning for [d = 1] ([23, 24]): the
    LCP trajectory (fractional counts) and its cost in the fractional
    instance.  Raises [Invalid_argument] when [d <> 1]. *)

val round_up : float array array -> Model.Schedule.t
(** Pointwise ceiling — the naive rounding whose switching cost the
    paper shows can blow up arbitrarily. *)

val round_randomized :
  rng:Util.Prng.t -> Model.Instance.t -> float array array -> Model.Schedule.t
(** The randomised rounding of [4] for the homogeneous case ([d = 1]):
    draw one offset [Theta ~ U(0,1)] and set
    [X_t = max(ceil(x_t - Theta), ceil(lambda_t / zmax))].  With a single
    shared offset the rounding is monotone, so the expected number of
    power-ups equals the fractional one — the key step behind [4]'s
    2-competitive randomised algorithm; the capacity clamp restores the
    feasibility that naive rounding down loses.  Raises
    [Invalid_argument] when [d <> 1] or the fractional schedule's shape
    mismatches the instance. *)

val oscillation_cost : eps:float -> periods:int -> beta:float -> float * float
(** The paper's rounding counterexample: a fractional schedule
    oscillating between [1] and [1 + eps] pays switching cost
    [eps * beta] per period, while its ceiling pays [beta].  Returns
    [(fractional_switching, rounded_switching)] over [periods]
    oscillations; their ratio is [1 / eps]. *)
