lib/fractional/relax.ml: Array Convex Float Model Offline Online Util
