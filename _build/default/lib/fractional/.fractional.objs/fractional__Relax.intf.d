lib/fractional/relax.mli: Model Util
