(** Literal implementation of the paper's graph representation
    (Section 4.1, Figure 4).

    The graph [G(I)] has two vertices [v↑_{t,x}] and [v↓_{t,x}] per slot
    [t] and configuration [x]:

    - [e^op_{t,x}]: [v↑_{t,x} -> v↓_{t,x}] with weight [g_t(x)];
    - [e^up_{t,x,j}]: [v↑_{t,x} -> v↑_{t,x+e_j}] with weight [beta_j];
    - [e^down_{t,x,j}]: [v↓_{t,x+e_j} -> v↓_{t,x}] with weight [0];
    - [e^next_{t,x}]: [v↓_{t,x} -> v↑_{t+1,x}] with weight [0].

    A shortest [v↑_{1,0} -> v↓_{T,0}] path corresponds to an optimal
    schedule.  This module materialises the edges and runs a
    topological-order shortest path — an *independent reference
    implementation* used to cross-validate the transform-based
    {!Dp}, exactly as the paper describes the algorithm.  It is
    exponential in memory for large fleets; use {!Dp} in production. *)

type stats = {
  vertices : int;  (** [2 T prod (m_j + 1)] *)
  edges : int;
}

val stats : Model.Instance.t -> stats
(** Size of [G(I)] without building it. *)

val solve : Model.Instance.t -> Dp.result
(** Shortest path through the explicit graph.  Same contract as
    {!Dp.solve_optimal} (deterministic lexicographic tie-breaks may
    differ, but the cost is identical). *)
