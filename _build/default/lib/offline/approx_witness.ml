let build ~gamma ~grid opt_schedule =
  if gamma <= 1. then invalid_arg "Approx_witness.build: gamma must be > 1";
  let horizon = Array.length opt_schedule in
  if horizon = 0 then invalid_arg "Approx_witness.build: empty schedule";
  let d = Array.length opt_schedule.(0) in
  let witness = Array.make horizon [||] in
  let prev = Array.make d 0 in
  let factor = (2. *. gamma) -. 1. in
  for time = 0 to horizon - 1 do
    let g = grid time in
    let x = Array.make d 0 in
    for j = 0 to d - 1 do
      let star = opt_schedule.(time).(j) in
      let ceiling = int_of_float (Float.floor (factor *. float_of_int star)) in
      if prev.(j) <= star then
        (* Round the optimal count up to the grid. *)
        match Grid.round_up g j star with
        | Some v -> x.(j) <- v
        | None ->
            invalid_arg
              (Printf.sprintf "Approx_witness.build: no grid value >= %d on axis %d" star j)
      else if prev.(j) <= ceiling then x.(j) <- prev.(j)
      else
        (* Drop to the largest grid value within the invariant band. *)
        x.(j) <- Grid.round_down g j ceiling
    done;
    witness.(time) <- x;
    Array.blit x 0 prev 0 d
  done;
  witness

let invariant_holds ~gamma ~opt ~witness =
  let factor = (2. *. gamma) -. 1. in
  let ok = ref true in
  Array.iteri
    (fun time x_star ->
      Array.iteri
        (fun j star ->
          let w = witness.(time).(j) in
          if w < star then ok := false;
          if float_of_int w > (factor *. float_of_int star) +. 1e-9 && w > star then
            ok := false)
        x_star)
    opt;
  !ok
