lib/offline/brute_force.mli: Dp Model
