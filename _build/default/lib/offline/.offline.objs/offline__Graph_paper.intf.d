lib/offline/graph_paper.mli: Dp Model
