lib/offline/dp.ml: Array Float Grid Logs Model Transform Util
