lib/offline/transform.ml: Array Grid List
