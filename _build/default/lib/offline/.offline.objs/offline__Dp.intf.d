lib/offline/dp.mli: Grid Model
