lib/offline/graph_paper.ml: Array Dp Float Grid Model
