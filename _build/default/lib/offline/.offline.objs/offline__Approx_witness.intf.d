lib/offline/approx_witness.mli: Grid Model
