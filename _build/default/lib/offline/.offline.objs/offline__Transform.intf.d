lib/offline/transform.mli: Grid
