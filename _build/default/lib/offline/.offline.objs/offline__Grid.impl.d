lib/offline/grid.ml: Array Float Fun List
