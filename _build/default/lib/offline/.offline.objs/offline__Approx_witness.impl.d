lib/offline/approx_witness.ml: Array Float Grid Printf
