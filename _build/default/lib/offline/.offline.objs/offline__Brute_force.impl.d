lib/offline/brute_force.ml: Array Dp Float Grid List Model
