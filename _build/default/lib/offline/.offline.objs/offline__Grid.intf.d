lib/offline/grid.mli: Model
