(** The witness schedule [X'] of Theorem 16 (paper, eq. (18), Figure 5).

    The proof of the approximation guarantee constructs, from an optimal
    schedule [X*], an on-grid schedule [X'] with

    {[ x'_t = x_min  if x'_{t-1} <= x*_t            (round up to the grid)
       x'_t = x'_{t-1} if x*_t < x'_{t-1} <= (2g-1) x*_t   (stay)
       x'_t = x_max  if (2g-1) x*_t < x'_{t-1}      (drop to the grid)  ]}

    per type, where [x_min = min {x in M^g | x >= x*_t}] and
    [x_max = max {x in M^g | x <= (2g-1) x*_t}], maintaining the
    invariant [x*_t <= x'_t <= (2g-1) x*_t] (eq. (19)).  Building [X']
    explicitly lets the test-suite check the proof mechanically and the
    experiment harness render Figure 5. *)

val build : gamma:float -> grid:(int -> Grid.t) -> Model.Schedule.t -> Model.Schedule.t
(** [build ~gamma ~grid opt_schedule] constructs [X'] on the per-slot
    grids.  Raises [Invalid_argument] if a rounding target does not exist
    on the grid (cannot happen for grids built by {!Grid.power} over the
    same fleet). *)

val invariant_holds : gamma:float -> opt:Model.Schedule.t -> witness:Model.Schedule.t -> bool
(** Checks eq. (19): [x*_{t,j} <= x'_{t,j} <= (2 gamma - 1) x*_{t,j}]
    pointwise (the upper bound is also capped by the fleet size, as in
    Figure 5's blue line). *)
