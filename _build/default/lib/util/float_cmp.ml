let default_eps = 1e-9

let close ?(eps = default_eps) a b =
  if a = b then true
  else if Float.is_nan a || Float.is_nan b then false
  else if not (Float.is_finite a && Float.is_finite b) then false
  else
    let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
    Float.abs (a -. b) <= eps *. scale

let le ?(eps = default_eps) a b = a <= b || close ~eps a b
let ge ?(eps = default_eps) a b = a >= b || close ~eps a b

let clamp ~lo ~hi x = Float.max lo (Float.min hi x)

let is_finite x = Float.is_finite x
