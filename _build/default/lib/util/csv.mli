(** Minimal CSV reading/writing for experiment artifacts.

    Deliberately small: comma-separated, quotes only when a cell contains
    a comma, quote or newline; no embedded-newline support on read (the
    library never produces such cells). *)

val write : path:string -> header:string list -> string list list -> unit
(** Write [header] then the rows.  Raises [Sys_error] on I/O failure. *)

val read : path:string -> string list list
(** All rows including the header line, cells unescaped. *)

val read_body : path:string -> header:string list -> string list list
(** Like {!read} but checks that the first row equals [header]
    (raises [Invalid_argument] otherwise) and returns only the body. *)
