let mean xs =
  let n = Array.length xs in
  if n = 0 then Float.nan else Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (acc /. float_of_int n)

let minimum xs = Array.fold_left Float.min infinity xs
let maximum xs = Array.fold_left Float.max neg_infinity xs

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = int_of_float (Float.ceil pos) in
    let frac = pos -. float_of_int lo in
    ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
  end

let median xs = quantile xs 0.5

let std_error xs =
  let n = Array.length xs in
  if n = 0 then Float.nan else stddev xs /. sqrt (float_of_int n)

let mean_ci95 xs = (mean xs, 1.96 *. std_error xs)

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 || Array.exists (fun x -> x <= 0.) xs then Float.nan
  else
    let acc = Array.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (acc /. float_of_int n)
