(** Terminal renderings of the paper's figures.

    The paper's Figures 1, 3 and 5 are step plots of integer server counts
    over time; [step_series] renders one or more such series on a shared
    integer lattice so the staircase structure is visible in a terminal
    (and in [EXPERIMENTS.md]). *)

type series = { label : string; glyph : char; values : int array }
(** One step curve: [values.(t)] is the level during slot [t+1]. *)

val step_series : ?max_height:int -> series list -> string
(** Render the series on a common axis, one text row per integer level,
    highest level on top.  Later series overwrite earlier ones where they
    coincide.  [max_height] caps the number of rows (default 30). *)

val sparkline : float array -> string
(** One-line bar rendering of a non-negative float series (used for job
    volumes [lambda_t]). *)
