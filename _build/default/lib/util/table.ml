type align = Left | Right

type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let fit width row =
  let rec go n = function
    | [] -> if n = 0 then [] else "" :: go (n - 1) []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go width row

let add_row t row = t.rows <- fit (List.length t.header) row :: t.rows

let fmt_float x =
  if x = infinity then "inf"
  else if x = neg_infinity then "-inf"
  else if Float.is_nan x then "nan"
  else Printf.sprintf "%.4g" x

let add_float_row t ?(fmt = fmt_float) label xs =
  add_row t (label :: List.map fmt xs);
  t

let render ?(align = Right) t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    if n <= 0 then cell
    else
      match align with
      | Left -> cell ^ String.make n ' '
      | Right -> String.make n ' ' ^ cell
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line t.header :: rule :: List.map line rows)

let to_csv t =
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then begin
      let buf = Buffer.create (String.length cell + 2) in
      Buffer.add_char buf '"';
      String.iter
        (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
        cell;
      Buffer.add_char buf '"';
      Buffer.contents buf
    end
    else cell
  in
  let line row = String.concat "," (List.map escape row) in
  String.concat "\n" (line t.header :: List.rev_map line t.rows) ^ "\n"

let print ?align t =
  print_string (render ?align t);
  print_newline ()
