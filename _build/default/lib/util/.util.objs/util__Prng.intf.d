lib/util/prng.mli:
