lib/util/sexp.mli:
