lib/util/svg.mli:
