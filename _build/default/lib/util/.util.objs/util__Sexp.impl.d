lib/util/sexp.ml: List Printf String
