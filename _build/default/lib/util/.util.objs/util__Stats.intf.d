lib/util/stats.mli:
