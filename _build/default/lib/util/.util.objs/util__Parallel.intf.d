lib/util/parallel.mli:
