lib/util/csv.mli:
