lib/util/table.mli:
