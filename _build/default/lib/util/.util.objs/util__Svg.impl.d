lib/util/svg.ml: Array Buffer Float List Printf String
