lib/util/ascii_plot.ml: Array Buffer Char Float List Printf String
