(** Aligned plain-text tables for experiment output.

    The benchmark harness and the CLI print the rows the paper's theorems
    predict; a fixed-width renderer keeps them legible in a terminal and
    in [EXPERIMENTS.md] code blocks. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : header:string list -> t
(** Fresh table with the given column names. *)

val add_row : t -> string list -> unit
(** Append one row; the row is padded or truncated to the header width. *)

val add_float_row : t -> ?fmt:(float -> string) -> string -> float list -> t
(** [add_float_row tbl label xs] appends [label :: formatted xs] and
    returns the table for chaining.  The default format is ["%.4g"]. *)

val render : ?align:align -> t -> string
(** Render with column separators.  Numeric-looking cells are
    right-aligned when [align] is [Right] (the default). *)

val print : ?align:align -> t -> unit
(** [render] to standard output, followed by a newline. *)

val to_csv : t -> string
(** The same table as CSV text (header + rows), for machine-readable
    experiment artifacts. *)

val fmt_float : float -> string
(** Default cell formatter: ["%.4g"], with infinities rendered as
    ["inf"]. *)
