(** Tolerant floating-point comparisons used throughout the tests and the
    dynamic programs (cost values are sums of many float terms). *)

val default_eps : float
(** Default absolute/relative tolerance ([1e-9]). *)

val close : ?eps:float -> float -> float -> bool
(** [close a b] holds when [a] and [b] agree up to a mixed
    absolute/relative tolerance.  Two infinities of the same sign are
    close. *)

val le : ?eps:float -> float -> float -> bool
(** [le a b] is [a <= b] up to tolerance. *)

val ge : ?eps:float -> float -> float -> bool
(** [ge a b] is [a >= b] up to tolerance. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp into the closed interval [\[lo, hi\]]. *)

val is_finite : float -> bool
(** True for ordinary floats (not nan, not infinite). *)
