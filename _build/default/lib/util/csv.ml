(* Empty cells are quoted too, so a single-cell empty row is never
   mistaken for a blank line on read. *)
let needs_quoting cell =
  cell = "" || String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell

let escape cell =
  if needs_quoting cell then begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else cell

let write ~path ~header rows =
  let oc = open_out path in
  let emit row = output_string oc (String.concat "," (List.map escape row) ^ "\n") in
  (try
     emit header;
     List.iter emit rows
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

(* Split one line into cells, honouring double-quote escaping. *)
let split_line line =
  let cells = ref [] in
  let buf = Buffer.create 16 in
  let in_quotes = ref false in
  let n = String.length line in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && line.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char buf c
    end
    else if c = '"' then in_quotes := true
    else if c = ',' then begin
      cells := Buffer.contents buf :: !cells;
      Buffer.clear buf
    end
    else Buffer.add_char buf c;
    incr i
  done;
  cells := Buffer.contents buf :: !cells;
  List.rev !cells

let read ~path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       if line <> "" then rows := split_line line :: !rows
     done
   with
  | End_of_file -> close_in ic
  | e ->
      close_in_noerr ic;
      raise e);
  List.rev !rows

let read_body ~path ~header =
  match read ~path with
  | [] -> invalid_arg "Csv.read_body: empty file"
  | first :: body ->
      if first <> header then invalid_arg "Csv.read_body: header mismatch";
      body
