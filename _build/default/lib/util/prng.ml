type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let seed = bits64 g in
  { state = seed }

let copy g = { state = g.state }

let int g bound =
  assert (bound > 0);
  (* Drop two bits so the value always fits OCaml's 63-bit native int. *)
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  raw mod bound

let float g bound =
  assert (bound >= 0.);
  (* 53 high bits give a uniform double in [0, 1). *)
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  raw /. 9007199254740992. *. bound

let float_range g ~lo ~hi = lo +. float g (hi -. lo)

let bool g = Int64.logand (bits64 g) 1L = 1L

let gaussian g ~mu ~sigma =
  let rec nonzero () =
    let u = float g 1. in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float g 1. in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let exponential g ~rate =
  assert (rate > 0.);
  let rec nonzero () =
    let u = float g 1. in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let pick g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
