type series = { label : string; glyph : char; values : int array }

let step_series ?(max_height = 30) series =
  let width =
    List.fold_left (fun acc s -> max acc (Array.length s.values)) 0 series
  in
  let top =
    List.fold_left
      (fun acc s -> Array.fold_left max acc s.values)
      0 series
  in
  let top = min top max_height in
  let buf = Buffer.create 1024 in
  for level = top downto 1 do
    Buffer.add_string buf (Printf.sprintf "%3d |" level);
    for t = 0 to width - 1 do
      let cell =
        List.fold_left
          (fun acc s ->
            if t < Array.length s.values && s.values.(t) >= level then Some s.glyph
            else acc)
          None series
      in
      Buffer.add_char buf (match cell with Some c -> c | None -> ' ')
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "    +";
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf "     ";
  for t = 0 to width - 1 do
    Buffer.add_char buf (if (t + 1) mod 5 = 0 then Char.chr (Char.code '0' + ((t + 1) / 5) mod 10) else ' ')
  done;
  Buffer.add_string buf "  (time slots; digit k marks t = 5k)\n";
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "     %c = %s\n" s.glyph s.label))
    series;
  Buffer.contents buf

let sparkline xs =
  let glyphs = [| " "; "."; ":"; "-"; "="; "+"; "*"; "#"; "%"; "@" |] in
  let hi = Array.fold_left Float.max 0. xs in
  if hi <= 0. then String.make (Array.length xs) ' '
  else
    String.concat ""
      (Array.to_list
         (Array.map
            (fun x ->
              let idx = int_of_float (x /. hi *. 9.) in
              glyphs.(max 0 (min 9 idx)))
            xs))
