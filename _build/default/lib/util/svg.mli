(** Minimal SVG rendering of step plots — the paper's figures as actual
    graphics, with no external dependency.

    Produces self-contained SVG documents: axes with integer ticks, one
    step path per series, and a legend.  Colours default to a small
    qualitative palette. *)

type series = {
  label : string;
  color : string option;  (** CSS colour; [None] picks from the palette *)
  values : float array;   (** level during slot [t] *)
}

val step_plot :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  string
(** Render the series as step curves over slots [0 .. n-1].  Returns the
    SVG document text (default canvas 720x360). *)

val int_series : label:string -> ?color:string -> int array -> series
(** Convenience wrapper for integer trajectories. *)
