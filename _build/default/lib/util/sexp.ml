type t = Atom of string | List of t list

type state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_blank st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_blank st
  | Some ';' ->
      (* Comment to end of line. *)
      let rec eat () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            eat ()
      in
      eat ();
      skip_blank st
  | Some _ | None -> ()

let error st msg = Error (Printf.sprintf "%s at offset %d" msg st.pos)

let rec parse_one st =
  skip_blank st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '(' ->
      advance st;
      let rec items acc =
        skip_blank st;
        match peek st with
        | Some ')' ->
            advance st;
            Ok (List (List.rev acc))
        | None -> error st "unclosed parenthesis"
        | Some _ -> (
            match parse_one st with
            | Ok item -> items (item :: acc)
            | Error _ as e -> e)
      in
      items []
  | Some ')' -> error st "unexpected ')'"
  | Some _ ->
      let start = st.pos in
      let rec eat () =
        match peek st with
        | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | ';') | None -> ()
        | Some _ ->
            advance st;
            eat ()
      in
      eat ();
      Ok (Atom (String.sub st.input start (st.pos - start)))

let parse input =
  let st = { input; pos = 0 } in
  match parse_one st with
  | Error _ as e -> e
  | Ok v ->
      skip_blank st;
      if st.pos = String.length input then Ok v
      else error st "trailing content after expression"

let parse_many input =
  let st = { input; pos = 0 } in
  let rec go acc =
    skip_blank st;
    if st.pos = String.length input then Ok (List.rev acc)
    else
      match parse_one st with
      | Ok v -> go (v :: acc)
      | Error _ as e -> (match e with Error m -> Error m | Ok _ -> assert false)
  in
  go []

let rec to_string = function
  | Atom a -> a
  | List items -> "(" ^ String.concat " " (List.map to_string items) ^ ")"

let atom = function Atom a -> Some a | List _ -> None

let assoc key items =
  List.find_map
    (function
      | List (Atom k :: args) when k = key -> Some args
      | Atom _ | List _ -> None)
    items

let float_atom = function Atom a -> float_of_string_opt a | List _ -> None
let int_atom = function Atom a -> int_of_string_opt a | List _ -> None
