type series = { label : string; color : string option; values : float array }

let palette = [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b" |]

let int_series ~label ?color values =
  { label; color; values = Array.map float_of_int values }

let escape text =
  let buf = Buffer.create (String.length text) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    text;
  Buffer.contents buf

let step_plot ?(width = 720) ?(height = 360) ?(x_label = "time slot")
    ?(y_label = "active servers") ~title series =
  let margin_left = 56 and margin_right = 16 and margin_top = 40 in
  let margin_bottom = 48 + (16 * List.length series) in
  let plot_w = width - margin_left - margin_right in
  let plot_h = height - margin_top - margin_bottom in
  let n =
    List.fold_left (fun acc s -> max acc (Array.length s.values)) 1 series
  in
  let y_max =
    List.fold_left
      (fun acc s -> Array.fold_left Float.max acc s.values)
      1. series
  in
  let y_max = Float.max 1. (Float.ceil y_max) in
  let x_of t = float_of_int margin_left +. (float_of_int t /. float_of_int n *. float_of_int plot_w) in
  let y_of v =
    float_of_int (margin_top + plot_h) -. (v /. y_max *. float_of_int plot_h)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" font-family=\"sans-serif\" font-size=\"12\">\n"
       width height width height);
  Buffer.add_string buf
    (Printf.sprintf "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"22\" font-size=\"15\" font-weight=\"bold\">%s</text>\n"
       margin_left (escape title));
  (* Axes. *)
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"black\"/>\n" margin_left
       (margin_top + plot_h) (margin_left + plot_w) (margin_top + plot_h));
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"black\"/>\n" margin_left
       margin_top margin_left (margin_top + plot_h));
  (* Y ticks: at most ~8 integer ticks. *)
  let y_step = max 1 (int_of_float (Float.ceil (y_max /. 8.))) in
  let rec y_ticks v =
    if v <= y_max +. 1e-9 then begin
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke=\"#ddd\"/>\n"
           margin_left (y_of v) (margin_left + plot_w) (y_of v));
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%d\" y=\"%.1f\" text-anchor=\"end\" dominant-baseline=\"middle\">%g</text>\n"
           (margin_left - 6) (y_of v) v);
      y_ticks (v +. float_of_int y_step)
    end
  in
  y_ticks 0.;
  (* X ticks every ~n/8 slots. *)
  let x_step = max 1 (n / 8) in
  let t = ref 0 in
  while !t < n do
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\">%d</text>\n" (x_of !t)
         (margin_top + plot_h + 16) !t);
    t := !t + x_step
  done;
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\">%s</text>\n"
       (margin_left + (plot_w / 2))
       (margin_top + plot_h + 34)
       (escape x_label));
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"14\" y=\"%d\" text-anchor=\"middle\" transform=\"rotate(-90 14 %d)\">%s</text>\n"
       (margin_top + (plot_h / 2))
       (margin_top + (plot_h / 2))
       (escape y_label));
  (* Step paths. *)
  List.iteri
    (fun i s ->
      let color =
        match s.color with Some c -> c | None -> palette.(i mod Array.length palette)
      in
      let buf_path = Buffer.create 256 in
      Array.iteri
        (fun t v ->
          let x0 = x_of t and x1 = x_of (t + 1) and y = y_of v in
          if t = 0 then Buffer.add_string buf_path (Printf.sprintf "M %.1f %.1f " x0 y)
          else Buffer.add_string buf_path (Printf.sprintf "L %.1f %.1f " x0 y);
          Buffer.add_string buf_path (Printf.sprintf "L %.1f %.1f " x1 y))
        s.values;
      Buffer.add_string buf
        (Printf.sprintf
           "<path d=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\"/>\n"
           (Buffer.contents buf_path) color);
      (* Legend row. *)
      let ly = margin_top + plot_h + 48 + (16 * i) in
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" stroke-width=\"3\"/>\n"
           margin_left ly (margin_left + 24) ly color);
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%d\" y=\"%d\" dominant-baseline=\"middle\">%s</text>\n"
           (margin_left + 32) ly (escape s.label)))
    series;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
