(** Small descriptive-statistics helpers for experiment tables. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on an empty array. *)

val stddev : float array -> float
(** Population standard deviation; [nan] on an empty array. *)

val minimum : float array -> float
(** Smallest element; [infinity] on an empty array. *)

val maximum : float array -> float
(** Largest element; [neg_infinity] on an empty array. *)

val quantile : float array -> float -> float
(** [quantile xs q] is the linear-interpolation quantile for
    [q] in [\[0, 1\]]; [nan] on an empty array.  Does not mutate [xs]. *)

val median : float array -> float
(** Shorthand for [quantile xs 0.5]. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive values; [nan] if any value is
    non-positive or the array is empty. *)

val std_error : float array -> float
(** Standard error of the mean, [stddev / sqrt n]; [nan] on an empty
    array. *)

val mean_ci95 : float array -> float * float
(** Mean with its 95% normal-approximation half-width
    ([1.96 * std_error]). *)
