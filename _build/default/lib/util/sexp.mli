(** Minimal s-expressions — the surface syntax for instance files.

    Atoms are bare tokens (no quoting needed for the numeric/identifier
    atoms the instance format uses); lists are parenthesised.  Comments
    run from [;] to end of line. *)

type t = Atom of string | List of t list

val parse : string -> (t, string) result
(** Parse exactly one s-expression (surrounding whitespace allowed);
    [Error msg] carries a human-readable position. *)

val parse_many : string -> (t list, string) result
(** Parse a sequence of s-expressions. *)

val to_string : t -> string
(** Render; atoms are emitted verbatim. *)

val atom : t -> string option
(** Atom payload, if any. *)

val assoc : string -> t list -> t list option
(** [assoc key items] finds [(key v1 v2 ...)] among [items] and returns
    its arguments. *)

val float_atom : t -> float option
val int_atom : t -> int option
