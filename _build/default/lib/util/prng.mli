(** Deterministic pseudo-random number generation.

    All experiments in this repository must be reproducible, so randomness
    is drawn from an explicit splitmix64 state rather than the global
    [Random] module.  Streams can be split so that independent experiment
    components do not perturb each other's draws. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds
    yield equal streams. *)

val split : t -> t
(** [split g] derives an independent generator from [g], advancing [g]
    by one draw. *)

val copy : t -> t
(** [copy g] duplicates the current state without advancing it. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)].  [bound] must be finite
    and non-negative. *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box–Muller. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate ([rate > 0]). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
