type t = int array

let zero d = Array.make d 0

let equal a b = a = b

let compare = Stdlib.compare

let copy = Array.copy

let to_string x =
  "(" ^ String.concat "," (Array.to_list (Array.map string_of_int x)) ^ ")"

let switching_cost types ~from_ ~to_ =
  let acc = ref 0. in
  Array.iteri
    (fun j st ->
      let up = to_.(j) - from_.(j) in
      if up > 0 then acc := !acc +. (float_of_int up *. st.Server_type.switching_cost))
    types;
  !acc

let transition_cost types ~from_ ~to_ =
  let acc = ref 0. in
  Array.iteri
    (fun j st ->
      let delta = to_.(j) - from_.(j) in
      if delta > 0 then acc := !acc +. (float_of_int delta *. st.Server_type.switching_cost)
      else if delta < 0 then
        acc := !acc +. (float_of_int (-delta) *. st.Server_type.switch_down))
    types;
  !acc

let capacity types x =
  let acc = ref 0. in
  Array.iteri (fun j st -> acc := !acc +. (float_of_int x.(j) *. st.Server_type.cap)) types;
  !acc

let dominates a b =
  let ok = ref true in
  Array.iteri (fun j aj -> if aj < b.(j) then ok := false) a;
  !ok

let within x m =
  let ok = ref true in
  Array.iteri (fun j xj -> if xj < 0 || xj > m.(j) then ok := false) x;
  !ok
