type t = {
  name : string;
  count : int;
  switching_cost : float;
  switch_down : float;
  cap : float;
}

let make ?(name = "server") ?(switch_down = 0.) ~count ~switching_cost ~cap () =
  if count < 0 then invalid_arg "Server_type.make: negative count";
  if switching_cost < 0. || Float.is_nan switching_cost then
    invalid_arg "Server_type.make: negative switching cost";
  if switch_down < 0. || Float.is_nan switch_down then
    invalid_arg "Server_type.make: negative power-down cost";
  if cap <= 0. || Float.is_nan cap then invalid_arg "Server_type.make: non-positive cap";
  { name; count; switching_cost; switch_down; cap }

let with_count t count =
  if count < 0 then invalid_arg "Server_type.with_count: negative count";
  { t with count }

let pp ppf t =
  if t.switch_down = 0. then
    Format.fprintf ppf "%s(m=%d, beta=%g, zmax=%g)" t.name t.count t.switching_cost t.cap
  else
    Format.fprintf ppf "%s(m=%d, beta=%g+%g, zmax=%g)" t.name t.count t.switching_cost
      t.switch_down t.cap
