lib/model/config.ml: Array Server_type Stdlib String
