lib/model/server_type.ml: Float Format
