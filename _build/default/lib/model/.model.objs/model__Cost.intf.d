lib/model/cost.mli: Config Instance Schedule
