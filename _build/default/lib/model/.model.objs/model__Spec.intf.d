lib/model/spec.mli: Convex Instance Server_type Util
