lib/model/spec.ml: Array Buffer Convex Float In_channel Instance List Printf Result Server_type String Util
