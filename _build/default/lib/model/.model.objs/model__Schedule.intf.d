lib/model/schedule.mli: Config Format Instance
