lib/model/schedule.ml: Array Config Format Instance List
