lib/model/server_type.mli: Format
