lib/model/instance.ml: Array Convex Float Server_type
