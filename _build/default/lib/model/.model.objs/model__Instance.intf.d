lib/model/instance.mli: Convex Server_type
