lib/model/config.mli: Server_type
