lib/model/cost.ml: Array Config Convex Float Hashtbl Instance Schedule Server_type
