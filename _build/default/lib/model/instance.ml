type t = {
  types : Server_type.t array;
  load : float array;
  cost : time:int -> typ:int -> Convex.Fn.t;
  avail : time:int -> typ:int -> int;
  time_independent : bool;
  size_varying : bool;
}

let validate ~types ~load =
  if Array.length types = 0 then invalid_arg "Instance.make: no server types";
  Array.iter
    (fun l ->
      if l < 0. || Float.is_nan l then invalid_arg "Instance.make: negative load")
    load

let default_avail types ~time:_ ~typ = types.(typ).Server_type.count

let check_avail types avail ~horizon =
  let d = Array.length types in
  let varying = ref false in
  for time = 0 to horizon - 1 do
    for typ = 0 to d - 1 do
      let a = avail ~time ~typ in
      if a < 0 then invalid_arg "Instance.make: negative availability";
      if a > types.(typ).Server_type.count then
        invalid_arg "Instance.make: availability exceeds declared count";
      if a <> types.(typ).Server_type.count then varying := true
    done
  done;
  !varying

let make ?avail ~types ~load ~cost () =
  validate ~types ~load;
  let avail, size_varying =
    match avail with
    | None -> (default_avail types, false)
    | Some a -> (a, check_avail types a ~horizon:(Array.length load))
  in
  { types; load; cost; avail; time_independent = false; size_varying }

let make_static ?avail ~types ~load ~fns () =
  validate ~types ~load;
  if Array.length fns <> Array.length types then
    invalid_arg "Instance.make_static: one cost function per type required";
  let cost ~time:_ ~typ = fns.(typ) in
  let avail, size_varying =
    match avail with
    | None -> (default_avail types, false)
    | Some a -> (a, check_avail types a ~horizon:(Array.length load))
  in
  { types; load; cost; avail; time_independent = true; size_varying }

let horizon inst = Array.length inst.load
let num_types inst = Array.length inst.types

let prefix inst t =
  if t < 1 || t > horizon inst then invalid_arg "Instance.prefix: bad length";
  { inst with load = Array.sub inst.load 0 t }

let has_down_costs inst =
  Array.exists (fun st -> st.Server_type.switch_down > 0.) inst.types

let fold_switching inst =
  if not (has_down_costs inst) then inst
  else
    let types =
      Array.map
        (fun st ->
          Server_type.make ~name:st.Server_type.name
            ~count:st.Server_type.count
            ~switching_cost:(st.Server_type.switching_cost +. st.Server_type.switch_down)
            ~cap:st.Server_type.cap ())
        inst.types
    in
    { inst with types }

let window inst ~start ~len =
  if start < 0 || len < 1 || start + len > horizon inst then
    invalid_arg "Instance.window: bad range";
  { inst with
    load = Array.sub inst.load start len;
    cost = (fun ~time ~typ -> inst.cost ~time:(start + time) ~typ);
    avail = (fun ~time ~typ -> inst.avail ~time:(start + time) ~typ) }

let idle_cost inst ~time ~typ = Convex.Fn.eval (inst.cost ~time ~typ) 0.

let max_count inst ~typ = inst.types.(typ).Server_type.count

let counts inst = Array.map (fun st -> st.Server_type.count) inst.types

let capacity_at inst ~time =
  let acc = ref 0. in
  for typ = 0 to num_types inst - 1 do
    acc := !acc +. (float_of_int (inst.avail ~time ~typ) *. inst.types.(typ).Server_type.cap)
  done;
  !acc

let feasible_load inst =
  let ok = ref true in
  for time = 0 to horizon inst - 1 do
    if inst.load.(time) > capacity_at inst ~time +. 1e-9 then ok := false
  done;
  !ok

let scale_slot inst ~time ~parts =
  if parts < 1 then invalid_arg "Instance.scale_slot: parts must be >= 1";
  let k = 1. /. float_of_int parts in
  Array.init (num_types inst) (fun typ -> Convex.Fn.scale k (inst.cost ~time ~typ))
