(** One heterogeneous server type (paper, Section 1).

    A type [j] is described by the number of servers [m_j], the power-up
    (switching) cost [beta_j], and the per-server capacity [zmax_j] — the
    maximum job volume one server can process in a single time slot.
    Operating-cost functions live in {!Instance} because they may depend
    on the time slot. *)

type t = private {
  name : string;          (** label for tables and logs *)
  count : int;            (** [m_j >= 0] *)
  switching_cost : float; (** power-up cost [beta_j >= 0] *)
  switch_down : float;
      (** power-down cost [>= 0].  The paper folds it into the power-up
          cost (Section 1: with [x_0 = x_{T+1} = 0] every power-up is
          eventually matched by a power-down, so charging
          [beta_up + beta_down] per power-up is exactly equivalent);
          {!Instance.fold_switching} performs that folding, and the
          solvers apply it automatically. *)
  cap : float;            (** [zmax_j > 0] *)
}

val make :
  ?name:string ->
  ?switch_down:float ->
  count:int ->
  switching_cost:float ->
  cap:float ->
  unit ->
  t
(** Validating constructor; raises [Invalid_argument] on a negative
    count, a negative switching cost (either direction), or a
    non-positive capacity.  [switch_down] defaults to [0] (the paper's
    convention). *)

val with_count : t -> int -> t
(** Copy with a different server count (used by time-varying sizes). *)

val pp : Format.formatter -> t -> unit
(** Debug printer. *)
