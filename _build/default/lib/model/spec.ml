let ( let* ) = Result.bind

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let field key items =
  match Util.Sexp.assoc key items with
  | Some args -> Ok args
  | None -> fail "missing field (%s ...)" key

let float_field key items =
  let* args = field key items in
  match args with
  | [ v ] -> (
      match Util.Sexp.float_atom v with
      | Some f -> Ok f
      | None -> fail "field (%s ...) expects a number" key)
  | _ -> fail "field (%s ...) expects exactly one number" key

let int_field key items =
  let* f = float_field key items in
  if Float.is_integer f then Ok (int_of_float f) else fail "field (%s ...) expects an integer" key

let string_field key items =
  let* args = field key items in
  match args with
  | [ Util.Sexp.Atom s ] -> Ok s
  | _ -> fail "field (%s ...) expects one atom" key

let parse_pairs what args =
  let pair = function
    | Util.Sexp.List [ a; b ] -> (
        match (Util.Sexp.float_atom a, Util.Sexp.float_atom b) with
        | Some x, Some y -> Ok (x, y)
        | _ -> fail "%s expects numeric pairs" what)
    | Util.Sexp.Atom _ | Util.Sexp.List _ -> fail "%s expects (x y) pairs" what
  in
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* p = pair item in
      Ok (p :: acc))
    (Ok []) args
  |> Result.map List.rev

let guarded what f = try Ok (f ()) with Invalid_argument m -> fail "%s: %s" what m

let parse_cost sexp =
  match sexp with
  | Util.Sexp.List (Util.Sexp.Atom "const" :: [ v ]) -> (
      match Util.Sexp.float_atom v with
      | Some c -> guarded "const" (fun () -> Convex.Fn.const c)
      | None -> fail "(const c) expects a number")
  | Util.Sexp.List (Util.Sexp.Atom "affine" :: fields) ->
      let* intercept = float_field "intercept" fields in
      let* slope = float_field "slope" fields in
      guarded "affine" (fun () -> Convex.Fn.affine ~intercept ~slope)
  | Util.Sexp.List (Util.Sexp.Atom "power" :: fields) ->
      let* idle = float_field "idle" fields in
      let* coef = float_field "coef" fields in
      let* expo = float_field "expo" fields in
      guarded "power" (fun () -> Convex.Fn.power ~idle ~coef ~expo)
  | Util.Sexp.List (Util.Sexp.Atom "quadratic" :: fields) ->
      let* c0 = float_field "c0" fields in
      let* c1 = float_field "c1" fields in
      let* c2 = float_field "c2" fields in
      guarded "quadratic" (fun () -> Convex.Fn.quadratic ~c0 ~c1 ~c2)
  | Util.Sexp.List (Util.Sexp.Atom "piecewise" :: args) ->
      let* points = parse_pairs "piecewise" args in
      guarded "piecewise" (fun () -> Convex.Fn.piecewise_linear points)
  | Util.Sexp.List (Util.Sexp.Atom "max-affine" :: args) ->
      let* pieces = parse_pairs "max-affine" args in
      guarded "max-affine" (fun () -> Convex.Fn.max_affine pieces)
  | Util.Sexp.Atom a -> fail "unknown cost expression %s" a
  | Util.Sexp.List (Util.Sexp.Atom family :: _) -> fail "unknown cost family %s" family
  | Util.Sexp.List _ -> fail "malformed cost expression"

let parse_type sexp =
  match sexp with
  | Util.Sexp.Atom _ -> fail "each type must be a list of fields"
  | Util.Sexp.List fields ->
      let name = Result.value (string_field "name" fields) ~default:"server" in
      let* count = int_field "count" fields in
      let* switching_cost = float_field "switching-cost" fields in
      let switch_down = Result.value (float_field "switch-down" fields) ~default:0. in
      let* cap = float_field "cap" fields in
      let* cost_args = field "cost" fields in
      let* fn =
        match cost_args with
        | [ c ] -> parse_cost c
        | _ -> fail "field (cost ...) expects one cost expression"
      in
      let* st =
        guarded "type" (fun () ->
            Server_type.make ~name ~switch_down ~count ~switching_cost ~cap ())
      in
      Ok (st, fn)

let parse_load args =
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      match Util.Sexp.float_atom item with
      | Some l when l >= 0. -> Ok (l :: acc)
      | Some _ -> fail "negative load"
      | None -> fail "loads must be numbers")
    (Ok []) args
  |> Result.map (fun l -> Array.of_list (List.rev l))

let parse text =
  let* sexp = Util.Sexp.parse text in
  match sexp with
  | Util.Sexp.List (Util.Sexp.Atom "instance" :: body) ->
      let* type_items = field "types" body in
      let* typed =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* t = parse_type item in
            Ok (t :: acc))
          (Ok []) type_items
        |> Result.map List.rev
      in
      if typed = [] then fail "at least one type required"
      else
        let* load_items = field "load" body in
        let* load = parse_load load_items in
        if Array.length load = 0 then fail "at least one load slot required"
        else
          let types = Array.of_list (List.map fst typed) in
          let fns = Array.of_list (List.map snd typed) in
          guarded "instance" (fun () -> Instance.make_static ~types ~load ~fns ())
  | Util.Sexp.Atom _ | Util.Sexp.List _ -> fail "expected (instance ...)"

let parse_planning text =
  let* sexp = Util.Sexp.parse text in
  match sexp with
  | Util.Sexp.List (Util.Sexp.Atom "instance" :: body) ->
      let* type_items = field "types" body in
      let* triples =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* st, fn = parse_type item in
            let capex =
              match item with
              | Util.Sexp.List fields ->
                  Result.value (float_field "capex" fields) ~default:0.
              | Util.Sexp.Atom _ -> 0.
            in
            if capex < 0. then fail "negative capex"
            else Ok ((st, fn, capex) :: acc))
          (Ok []) type_items
        |> Result.map List.rev
      in
      if triples = [] then fail "at least one type required"
      else
        let* load_items = field "load" body in
        let* load = parse_load load_items in
        if Array.length load = 0 then fail "at least one load slot required"
        else Ok (Array.of_list triples, load)
  | Util.Sexp.Atom _ | Util.Sexp.List _ -> fail "expected (instance ...)"

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error m -> Error m

let render_cost fn ~cap =
  (* Sample the curve into a piecewise-linear description — lossy but
     always expressible. *)
  let samples = 9 in
  let points =
    List.init samples (fun i ->
        let z = cap *. float_of_int i /. float_of_int (samples - 1) in
        Printf.sprintf "(%.9g %.9g)" z (Convex.Fn.eval fn z))
  in
  "(piecewise " ^ String.concat " " points ^ ")"

let to_string inst =
  if not inst.Instance.time_independent then
    invalid_arg "Spec.to_string: only time-independent instances are expressible";
  let buf = Buffer.create 512 in
  Buffer.add_string buf "(instance\n (types\n";
  Array.iteri
    (fun j st ->
      Buffer.add_string buf
        (Printf.sprintf
           "  ((name %s) (count %d) (switching-cost %.9g) (cap %.9g)\n   (cost %s))\n"
           st.Server_type.name st.Server_type.count st.Server_type.switching_cost
           st.Server_type.cap
           (render_cost (inst.Instance.cost ~time:0 ~typ:j) ~cap:st.Server_type.cap)))
    inst.Instance.types;
  Buffer.add_string buf " )\n (load";
  Array.iter (fun l -> Buffer.add_string buf (Printf.sprintf " %.9g" l)) inst.Instance.load;
  Buffer.add_string buf "))\n";
  Buffer.contents buf
