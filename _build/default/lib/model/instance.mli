(** A problem instance [I = (T, d, m, beta, F, Lambda)] (paper, Section 1).

    Time slots are 0-based in this code base: slot [t] here is the paper's
    slot [t + 1]; the horizon [T] is the number of slots.  Server types
    are 0-based as well.

    The operating-cost functions [f_{t,j}] are exposed as a closure so
    that both time-independent instances (Section 2) and time-dependent
    ones (Section 3) share one representation; [time_independent]
    records which case holds so algorithms can pick the matching
    guarantee.  Section 4.3's time-varying data-center sizes are modelled
    by the per-slot availability [avail]. *)

type t = private {
  types : Server_type.t array;             (** the [d] server types *)
  load : float array;                      (** [lambda_t], length [T] *)
  cost : time:int -> typ:int -> Convex.Fn.t; (** [f_{t,j}] *)
  avail : time:int -> typ:int -> int;      (** [m_{t,j}] (Section 4.3) *)
  time_independent : bool;                 (** [f_{t,j} = f_j] for all [t] *)
  size_varying : bool;                     (** [avail] differs from [m_j] *)
}

val make :
  ?avail:(time:int -> typ:int -> int) ->
  types:Server_type.t array ->
  load:float array ->
  cost:(time:int -> typ:int -> Convex.Fn.t) ->
  unit ->
  t
(** General (time-dependent) constructor.  Raises [Invalid_argument] when
    there are no types, a load is negative, or an availability exceeds the
    declared count or is negative (checked lazily per call site for the
    closure cases, eagerly for loads). *)

val make_static :
  ?avail:(time:int -> typ:int -> int) ->
  types:Server_type.t array ->
  load:float array ->
  fns:Convex.Fn.t array ->
  unit ->
  t
(** Time-independent constructor: [f_{t,j} = fns.(j)] for all [t];
    the result has [time_independent = true]. *)

val horizon : t -> int
(** [T], the number of slots. *)

val num_types : t -> int
(** [d]. *)

val prefix : t -> int -> t
(** [prefix inst t] is the shortened instance [I^t]: the first [t] slots
    ([1 <= t <= horizon]). *)

val has_down_costs : t -> bool
(** Whether any type carries a positive power-down cost. *)

val fold_switching : t -> t
(** The paper's folding: replace each type's costs by
    [beta := beta + switch_down, switch_down := 0].  Because schedules
    start and end all-inactive, every schedule has the same total cost
    under the folded instance as under the original (a tested identity),
    so solving the folded instance solves the original. *)

val window : t -> start:int -> len:int -> t
(** [window inst ~start ~len] is the sub-instance covering slots
    [start, start + len); slot [u] of the window is slot [start + u] of
    [inst].  Used by lookahead baselines. *)

val idle_cost : t -> time:int -> typ:int -> float
(** [l_{t,j} = f_{t,j}(0)]. *)

val max_count : t -> typ:int -> int
(** [m_j], the declared fleet size of the type. *)

val counts : t -> int array
(** All [m_j]. *)

val capacity_at : t -> time:int -> float
(** [sum_j m_{t,j} * zmax_j], the maximal processable volume at [time]. *)

val feasible_load : t -> bool
(** Whether every slot's load fits within that slot's capacity — a
    necessary and sufficient condition for a feasible schedule to exist. *)

val scale_slot : t -> time:int -> parts:int -> Convex.Fn.t array
(** The sub-slot cost functions [f~ = f_{t,j} / parts] used by algorithm
    C's refinement of slot [time] (Section 3.2). *)
