(** Server configurations: the vector [x = (x_1, ..., x_d)] of active
    servers per type.  Plain [int array]s with helper operations; arrays
    are never shared mutably across modules — functions that could keep a
    reference copy their input. *)

type t = int array

val zero : int -> t
(** All-inactive configuration of the given dimension. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic order; used for deterministic argmin tie-breaking. *)

val copy : t -> t

val to_string : t -> string
(** e.g. ["(2,0,1)"]. *)

val switching_cost : Server_type.t array -> from_:t -> to_:t -> float
(** [sum_j beta_j (to_j - from_j)^+] — the power-up cost of moving between
    consecutive slots (paper, eq. (2)). *)

val transition_cost : Server_type.t array -> from_:t -> to_:t -> float
(** Two-sided variant: power-ups at [beta_j] plus power-downs at
    [switch_down_j].  Equals {!switching_cost} when every
    [switch_down_j = 0]. *)

val capacity : Server_type.t array -> t -> float
(** [sum_j x_j zmax_j]: the job volume the configuration can absorb. *)

val dominates : t -> t -> bool
(** Pointwise [>=]. *)

val within : t -> t -> bool
(** [within x m]: pointwise [0 <= x_j <= m_j]. *)
