(** Declarative instance files.

    A time-independent problem instance can be written down as an
    s-expression and solved from the CLI without writing OCaml:

    {v
    (instance
      (types
        ((name cpu) (count 8) (switching-cost 3) (cap 1)
         (cost (power (idle 0.5) (coef 0.7) (expo 2))))
        ((name gpu) (count 3) (switching-cost 10) (cap 4)
         (cost (affine (intercept 1.2) (slope 0.4)))))
      (load 1 2 5.5 8 7 3 1 0))
    v}

    Each type takes an optional [(switch-down c)] power-down cost.
    Cost families: [(const c)], [(affine (intercept i) (slope s))],
    [(power (idle i) (coef c) (expo e))],
    [(quadratic (c0 a) (c1 b) (c2 c))],
    [(piecewise (z v) (z v) ...)], and
    [(max-affine (i s) (i s) ...)].

    Only the time-independent setting is expressible in files — the
    common case for experiment configs; time-dependent instances need
    the OCaml API. *)

val parse : string -> (Instance.t, string) result
(** Parse an instance from the s-expression text. *)

val load_file : string -> (Instance.t, string) result
(** Read and parse a file. *)

val parse_cost : Util.Sexp.t -> (Convex.Fn.t, string) result
(** Parse a single cost-family expression (exposed for tests). *)

val parse_planning :
  string -> ((Server_type.t * Convex.Fn.t * float) array * float array, string) result
(** Parse the same file format for fleet planning: each type's [count]
    becomes the per-type maximum, and an optional [(capex c)] field
    (default [0]) prices each unit.  Returns the candidate triples
    [(type-at-max-count, cost-curve, capex)] and the load. *)

val to_string : Instance.t -> string
(** Render a time-independent instance back to the file format (cost
    functions are rendered from their descriptions only when they came
    from {!parse}; programmatically-built instances render a
    [piecewise] sampling of each cost curve instead).  Raises
    [Invalid_argument] on time-dependent instances. *)
