type t = Config.t array

let make rows = Array.map Array.copy rows

let of_lists rows = Array.of_list (List.map Array.of_list rows)

let horizon s = Array.length s

let dim s = if Array.length s = 0 then 0 else Array.length s.(0)

let get s ~time = Array.copy s.(time)

let column s ~typ = Array.map (fun x -> x.(typ)) s

type violation =
  | Bad_count of { time : int; typ : int; value : int; avail : int }
  | Under_capacity of { time : int; capacity : float; load : float }

let check inst s =
  if horizon s <> Instance.horizon inst then
    invalid_arg "Schedule.check: horizon mismatch";
  let d = Instance.num_types inst in
  let violations = ref [] in
  for time = 0 to horizon s - 1 do
    let x = s.(time) in
    if Array.length x <> d then invalid_arg "Schedule.check: dimension mismatch";
    for typ = 0 to d - 1 do
      let avail = inst.Instance.avail ~time ~typ in
      if x.(typ) < 0 || x.(typ) > avail then
        violations := Bad_count { time; typ; value = x.(typ); avail } :: !violations
    done;
    let capacity = Config.capacity inst.Instance.types x in
    let load = inst.Instance.load.(time) in
    if capacity +. 1e-9 < load then
      violations := Under_capacity { time; capacity; load } :: !violations
  done;
  List.rev !violations

let feasible inst s = check inst s = []

type type_stats = {
  peak : int;
  mean_active : float;
  power_ups : int;
  power_downs : int;
  busy_slots : int;
}

let stats s ~typ =
  let horizon = horizon s in
  let col = column s ~typ in
  let peak = Array.fold_left max 0 col in
  let total = Array.fold_left ( + ) 0 col in
  let ups = ref 0 and downs = ref 0 and busy = ref 0 in
  let prev = ref 0 in
  Array.iter
    (fun x ->
      if x > !prev then ups := !ups + (x - !prev) else downs := !downs + (!prev - x);
      if x > 0 then incr busy;
      prev := x)
    col;
  { peak;
    mean_active = (if horizon = 0 then 0. else float_of_int total /. float_of_int horizon);
    power_ups = !ups;
    power_downs = !downs;
    busy_slots = !busy }

let pp_violation ppf = function
  | Bad_count { time; typ; value; avail } ->
      Format.fprintf ppf "slot %d: x_{%d} = %d outside [0, %d]" time typ value avail
  | Under_capacity { time; capacity; load } ->
      Format.fprintf ppf "slot %d: capacity %g < load %g" time capacity load
