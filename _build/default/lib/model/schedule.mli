(** Schedules: one configuration per time slot, [x_t = schedule.(t)].

    The boundary states [x_0 = x_{T+1} = 0] of the paper are implicit —
    they are handled by the cost functions and feasibility checks, not
    stored. *)

type t = Config.t array

val make : Config.t array -> t
(** Deep-copies the rows so later mutation of the input cannot alias. *)

val of_lists : int list list -> t
(** Convenience constructor for tests: one inner list per slot. *)

val horizon : t -> int
val dim : t -> int

val get : t -> time:int -> Config.t
(** A copy of the slot's configuration. *)

val column : t -> typ:int -> int array
(** The per-type trajectory [x_{1,j}, ..., x_{T,j}] — what the paper's
    figures plot. *)

type violation =
  | Bad_count of { time : int; typ : int; value : int; avail : int }
      (** [x_{t,j}] outside [\[0, m_{t,j}\]]. *)
  | Under_capacity of { time : int; capacity : float; load : float }
      (** [sum_j x_{t,j} zmax_j < lambda_t]. *)

val check : Instance.t -> t -> violation list
(** All feasibility violations (empty list means the schedule is feasible
    in the paper's sense). *)

val feasible : Instance.t -> t -> bool

val pp_violation : Format.formatter -> violation -> unit

type type_stats = {
  peak : int;           (** max active servers of the type *)
  mean_active : float;  (** average active count over the horizon *)
  power_ups : int;      (** individual servers powered up (incl. slot 0) *)
  power_downs : int;    (** individual servers powered down (excl. final teardown) *)
  busy_slots : int;     (** slots with at least one active server *)
}

val stats : t -> typ:int -> type_stats
(** Operational statistics of one type's trajectory — power cycling,
    utilisation of the fleet, idle exposure; used by the [analyze] CLI
    and the examples. *)
