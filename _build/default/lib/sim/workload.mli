(** Synthetic job-volume traces.

    The paper evaluates nothing empirically and real data-center traces
    are proprietary, so experiments run on synthetic traces that exercise
    the same decision structure: slow diurnal swings (the motivating
    "low-load periods" of the introduction), on/off bursts (power-up /
    power-down stress), random walks (no structure), and spike trains
    (rare overload).  All generators are deterministic given the PRNG
    state. *)

val constant : horizon:int -> level:float -> float array

val diurnal :
  ?noise:float ->
  ?rng:Util.Prng.t ->
  horizon:int ->
  period:int ->
  base:float ->
  peak:float ->
  unit ->
  float array
(** Sinusoidal day/night pattern between [base] and [peak] with the given
    [period]; optional multiplicative Gaussian noise (std [noise]). *)

val bursty :
  horizon:int -> burst:int -> gap:int -> height:float -> ?base:float -> unit -> float array
(** Rectangular bursts: [burst] slots at [height], then [gap] slots at
    [base] (default 0), repeating. *)

val random_walk :
  rng:Util.Prng.t -> horizon:int -> start:float -> step:float -> lo:float -> hi:float -> float array
(** Reflected random walk with uniform steps in [±step]. *)

val spikes :
  rng:Util.Prng.t -> horizon:int -> base:float -> height:float -> rate:float -> float array
(** Base load with spikes of the given [height] occurring independently
    with probability [rate] per slot. *)

val mmpp :
  rng:Util.Prng.t ->
  horizon:int ->
  low:float ->
  high:float ->
  switch_prob:float ->
  jitter:float ->
  float array
(** Markov-modulated load: a two-state chain (low/high mean) switching
    state with probability [switch_prob] per slot; the emitted load is
    the state mean with multiplicative Gaussian [jitter], clamped at 0.
    Produces the regime-switching traces real clusters show (long quiet
    phases, long busy phases). *)

val weekly :
  ?rng:Util.Prng.t ->
  ?noise:float ->
  weeks:int ->
  day:int ->
  weekday_peak:float ->
  weekend_peak:float ->
  base:float ->
  unit ->
  float array
(** A 7-day cycle: five diurnal weekdays at [weekday_peak] followed by
    two quieter weekend days at [weekend_peak], repeated [weeks] times
    with [day] slots per day — the classic enterprise shape (and the
    natural scenario pair for robust fleet planning). *)

val add : float array -> float array -> float array
(** Pointwise sum (lengths must match). *)

val clamp : lo:float -> hi:float -> float array -> float array
(** Pointwise clamp into [\[lo, hi\]]. *)

val scale_to_peak : peak:float -> float array -> float array
(** Rescale so that the maximum equals [peak] (no-op on all-zero input). *)
