lib/sim/workload.mli: Util
