lib/sim/trace.mli: Model
