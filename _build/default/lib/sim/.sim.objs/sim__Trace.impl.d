lib/sim/trace.ml: Array List Model Printf Util
