lib/sim/workload.ml: Array Float Util
