lib/sim/scenarios.mli: Model Util
