lib/sim/scenarios.ml: Array Convex Float List Model Printf Util Workload
