let constant ~horizon ~level =
  if level < 0. then invalid_arg "Workload.constant: negative level";
  Array.make horizon level

let diurnal ?(noise = 0.) ?rng ~horizon ~period ~base ~peak () =
  if period < 1 then invalid_arg "Workload.diurnal: period must be >= 1";
  if base < 0. || peak < base then invalid_arg "Workload.diurnal: need 0 <= base <= peak";
  Array.init horizon (fun t ->
      let phase = 2. *. Float.pi *. float_of_int t /. float_of_int period in
      let mid = (base +. peak) /. 2. and amp = (peak -. base) /. 2. in
      let pure = mid -. (amp *. cos phase) in
      let noisy =
        match rng with
        | Some g when noise > 0. -> pure *. Float.max 0. (Util.Prng.gaussian g ~mu:1. ~sigma:noise)
        | Some _ | None -> pure
      in
      Float.max 0. noisy)

let bursty ~horizon ~burst ~gap ~height ?(base = 0.) () =
  if burst < 1 || gap < 0 then invalid_arg "Workload.bursty: bad shape";
  if height < base || base < 0. then invalid_arg "Workload.bursty: need 0 <= base <= height";
  Array.init horizon (fun t -> if t mod (burst + gap) < burst then height else base)

let random_walk ~rng ~horizon ~start ~step ~lo ~hi =
  if lo > hi || start < lo || start > hi then invalid_arg "Workload.random_walk: bad range";
  let x = ref start in
  Array.init horizon (fun _ ->
      let delta = Util.Prng.float_range rng ~lo:(-.step) ~hi:step in
      let next = !x +. delta in
      (* Reflect at the boundaries. *)
      let next = if next > hi then hi -. (next -. hi) else next in
      let next = if next < lo then lo +. (lo -. next) else next in
      x := Util.Float_cmp.clamp ~lo ~hi next;
      !x)

let spikes ~rng ~horizon ~base ~height ~rate =
  if base < 0. || height < 0. || rate < 0. || rate > 1. then
    invalid_arg "Workload.spikes: bad parameters";
  Array.init horizon (fun _ ->
      if Util.Prng.float rng 1. < rate then base +. height else base)

let mmpp ~rng ~horizon ~low ~high ~switch_prob ~jitter =
  if low < 0. || high < low then invalid_arg "Workload.mmpp: need 0 <= low <= high";
  if switch_prob < 0. || switch_prob > 1. then
    invalid_arg "Workload.mmpp: switch_prob in [0, 1]";
  if jitter < 0. then invalid_arg "Workload.mmpp: negative jitter";
  let in_high = ref false in
  Array.init horizon (fun _ ->
      if Util.Prng.float rng 1. < switch_prob then in_high := not !in_high;
      let mean = if !in_high then high else low in
      let noisy =
        if jitter > 0. then mean *. Float.max 0. (Util.Prng.gaussian rng ~mu:1. ~sigma:jitter)
        else mean
      in
      Float.max 0. noisy)

let weekly ?rng ?(noise = 0.) ~weeks ~day ~weekday_peak ~weekend_peak ~base () =
  if weeks < 1 || day < 1 then invalid_arg "Workload.weekly: bad shape";
  if base < 0. || weekday_peak < base || weekend_peak < base then
    invalid_arg "Workload.weekly: need base <= peaks";
  let horizon = weeks * 7 * day in
  Array.init horizon (fun t ->
      let day_index = t / day mod 7 in
      let peak = if day_index < 5 then weekday_peak else weekend_peak in
      let phase = 2. *. Float.pi *. float_of_int (t mod day) /. float_of_int day in
      let mid = (base +. peak) /. 2. and amp = (peak -. base) /. 2. in
      let pure = mid -. (amp *. cos phase) in
      let noisy =
        match rng with
        | Some g when noise > 0. ->
            pure *. Float.max 0. (Util.Prng.gaussian g ~mu:1. ~sigma:noise)
        | Some _ | None -> pure
      in
      Float.max 0. noisy)

let add a b =
  if Array.length a <> Array.length b then invalid_arg "Workload.add: length mismatch";
  Array.mapi (fun i x -> x +. b.(i)) a

let clamp ~lo ~hi xs = Array.map (Util.Float_cmp.clamp ~lo ~hi) xs

let scale_to_peak ~peak xs =
  if peak < 0. then invalid_arg "Workload.scale_to_peak: negative peak";
  let hi = Array.fold_left Float.max 0. xs in
  if hi <= 0. then Array.copy xs else Array.map (fun x -> x /. hi *. peak) xs
