let workload_header = [ "slot"; "load" ]

let save_workload ~path load =
  let rows =
    Array.to_list
      (Array.mapi (fun t l -> [ string_of_int t; Printf.sprintf "%.9g" l ]) load)
  in
  Util.Csv.write ~path ~header:workload_header rows

let load_workload ~path =
  let body = Util.Csv.read_body ~path ~header:workload_header in
  let parse = function
    | [ _; l ] -> (
        match float_of_string_opt l with
        | Some v when v >= 0. -> v
        | Some _ -> invalid_arg "Trace.load_workload: negative load"
        | None -> invalid_arg "Trace.load_workload: non-numeric load")
    | _ -> invalid_arg "Trace.load_workload: malformed row"
  in
  Array.of_list (List.map parse body)

let schedule_header inst =
  [ "slot"; "load" ]
  @ Array.to_list
      (Array.map (fun st -> st.Model.Server_type.name) inst.Model.Instance.types)
  @ [ "operating"; "switching" ]

let save_schedule ~path inst schedule =
  let d = Model.Instance.num_types inst in
  let prev = ref (Model.Config.zero d) in
  let rows =
    Array.to_list
      (Array.mapi
         (fun t x ->
           let op = Model.Cost.operating inst ~time:t x in
           let sw = Model.Cost.switching inst ~from_:!prev ~to_:x in
           prev := x;
           [ string_of_int t; Printf.sprintf "%.9g" inst.Model.Instance.load.(t) ]
           @ List.init d (fun j -> string_of_int x.(j))
           @ [ Printf.sprintf "%.9g" op; Printf.sprintf "%.9g" sw ])
         schedule)
  in
  Util.Csv.write ~path ~header:(schedule_header inst) rows

let load_schedule ~path ~d =
  let rows = Util.Csv.read ~path in
  match rows with
  | [] -> invalid_arg "Trace.load_schedule: empty file"
  | header :: body ->
      if List.length header <> d + 4 then
        invalid_arg "Trace.load_schedule: column count mismatch";
      let parse row =
        match row with
        | _slot :: _load :: rest when List.length rest = d + 2 ->
            let counts = List.filteri (fun i _ -> i < d) rest in
            Array.of_list
              (List.map
                 (fun c ->
                   match int_of_string_opt c with
                   | Some v when v >= 0 -> v
                   | Some _ | None -> invalid_arg "Trace.load_schedule: bad count")
                 counts)
        | _ -> invalid_arg "Trace.load_schedule: malformed row"
      in
      Array.of_list (List.map parse body)
