(** Persistence of workloads and schedules as CSV — lets experiments be
    replayed on external traces and results be inspected outside OCaml. *)

val save_workload : path:string -> float array -> unit
(** Columns [slot, load]. *)

val load_workload : path:string -> float array
(** Inverse of {!save_workload}; raises [Invalid_argument] on malformed
    files (wrong header, non-numeric or negative loads). *)

val save_schedule : path:string -> Model.Instance.t -> Model.Schedule.t -> unit
(** Columns [slot, load, <one per type name>, operating, switching] —
    the per-slot decisions and cost breakdown. *)

val load_schedule : path:string -> d:int -> Model.Schedule.t
(** Reads back the configuration columns of {!save_schedule} (the cost
    columns are ignored). *)
