(* Each method is a record of closures over its own mutable state; the
   wrapper enforces input validation and non-negative forecasts. *)
type t = {
  name : string;
  mutable count : int;
  observe_raw : float -> unit;
  forecast_raw : int -> float;  (* k-th step ahead, k >= 1 *)
}

let observe p y =
  if y < 0. || not (Float.is_finite y) then
    invalid_arg "Predictor.observe: loads must be finite and non-negative";
  p.observe_raw y;
  p.count <- p.count + 1

let forecast p ~steps =
  if steps < 1 then invalid_arg "Predictor.forecast: steps must be >= 1";
  Array.init steps (fun i ->
      if p.count = 0 then 0. else Float.max 0. (p.forecast_raw (i + 1)))

let observed p = p.count
let name p = p.name

let naive_last () =
  let last = ref 0. in
  { name = "naive-last";
    count = 0;
    observe_raw = (fun y -> last := y);
    forecast_raw = (fun _ -> !last) }

let seasonal_naive ~period =
  if period < 1 then invalid_arg "Predictor.seasonal_naive: period must be >= 1";
  let seen = Array.make period Float.nan in
  let last = ref 0. in
  let count = ref 0 in
  { name = Printf.sprintf "seasonal-naive(%d)" period;
    count = 0;
    observe_raw =
      (fun y ->
        seen.(!count mod period) <- y;
        last := y;
        incr count);
    forecast_raw =
      (fun k ->
        let phase = (!count + k - 1) mod period in
        if Float.is_nan seen.(phase) then !last else seen.(phase)) }

let ewma ~alpha =
  if not (alpha > 0. && alpha <= 1.) then invalid_arg "Predictor.ewma: alpha in (0, 1]";
  let level = ref 0. in
  let started = ref false in
  { name = Printf.sprintf "ewma(%.2g)" alpha;
    count = 0;
    observe_raw =
      (fun y ->
        if !started then level := (alpha *. y) +. ((1. -. alpha) *. !level)
        else begin
          level := y;
          started := true
        end);
    forecast_raw = (fun _ -> !level) }

let holt ~alpha ~beta =
  if not (alpha > 0. && alpha <= 1.) then invalid_arg "Predictor.holt: alpha in (0, 1]";
  if not (beta >= 0. && beta <= 1.) then invalid_arg "Predictor.holt: beta in [0, 1]";
  let level = ref 0. and trend = ref 0. in
  let seen = ref 0 in
  { name = Printf.sprintf "holt(%.2g,%.2g)" alpha beta;
    count = 0;
    observe_raw =
      (fun y ->
        (match !seen with
        | 0 -> level := y
        | 1 ->
            trend := y -. !level;
            level := y
        | _ ->
            let prev = !level in
            level := (alpha *. y) +. ((1. -. alpha) *. (prev +. !trend));
            trend := (beta *. (!level -. prev)) +. ((1. -. beta) *. !trend));
        incr seen);
    forecast_raw = (fun k -> !level +. (float_of_int k *. !trend)) }

let holt_winters ~alpha ~beta ~gamma ~period =
  if period < 2 then invalid_arg "Predictor.holt_winters: period must be >= 2";
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg "Predictor.holt_winters: alpha in (0, 1]";
  if not (beta >= 0. && beta <= 1.) then invalid_arg "Predictor.holt_winters: beta in [0, 1]";
  if not (gamma >= 0. && gamma <= 1.) then
    invalid_arg "Predictor.holt_winters: gamma in [0, 1]";
  let level = ref 0. and trend = ref 0. in
  let season = Array.make period 0. in
  let seen = ref 0 in
  { name = Printf.sprintf "holt-winters(%d)" period;
    count = 0;
    observe_raw =
      (fun y ->
        let phase = !seen mod period in
        (match !seen with
        | 0 -> level := y
        | _ ->
            let prev = !level in
            level :=
              (alpha *. (y -. season.(phase))) +. ((1. -. alpha) *. (prev +. !trend));
            trend := (beta *. (!level -. prev)) +. ((1. -. beta) *. !trend);
            season.(phase) <-
              (gamma *. (y -. !level)) +. ((1. -. gamma) *. season.(phase)));
        incr seen);
    forecast_raw =
      (fun k ->
        let phase = (!seen + k - 1) mod period in
        !level +. (float_of_int k *. !trend) +. season.(phase)) }

type errors = { mae : float; rmse : float; mape : float; samples : int }

let backtest ~make ?(steps = 1) ?warmup series =
  if steps < 1 then invalid_arg "Predictor.backtest: steps must be >= 1";
  let n = Array.length series in
  let warmup = match warmup with Some w -> max 0 w | None -> n / 4 in
  let abs_sum = ref 0. and sq_sum = ref 0. in
  let pct_sum = ref 0. and pct_n = ref 0 in
  let samples = ref 0 in
  (* Ring of outstanding forecasts: ring.(t mod steps) holds the
     [steps]-ahead prediction that targets slot t. *)
  let ring = Array.make steps Float.nan in
  let p = make () in
  for t = 0 to n - 1 do
    let actual = series.(t) in
    let predicted = ring.(t mod steps) in
    if t >= warmup && not (Float.is_nan predicted) then begin
      let err = Float.abs (predicted -. actual) in
      abs_sum := !abs_sum +. err;
      sq_sum := !sq_sum +. (err *. err);
      if actual > 0. then begin
        pct_sum := !pct_sum +. (err /. actual);
        incr pct_n
      end;
      incr samples
    end;
    observe p actual;
    (* Record the forecast targeting slot t + steps. *)
    let f = forecast p ~steps in
    ring.((t + steps) mod steps) <- f.(steps - 1)
  done;
  let nf = float_of_int (max 1 !samples) in
  { mae = (if !samples = 0 then Float.nan else !abs_sum /. nf);
    rmse = (if !samples = 0 then Float.nan else sqrt (!sq_sum /. nf));
    mape = (if !pct_n = 0 then Float.nan else !pct_sum /. float_of_int !pct_n);
    samples = !samples }
