(** Receding-horizon planning on *forecast* loads — the honest version
    of {!Online.Baselines.receding_horizon}, which reads the true future.

    At each slot the planner observes the true load, re-plans an optimal
    window whose first slot carries the observed load and whose remaining
    slots carry the predictor's forecasts (clamped to the fleet
    capacity so the window instance stays well-formed), and commits the
    first decision.  Feasibility for the *true* loads is guaranteed
    because slot one of every window is the observed load.

    This realises the predictions-based line of related work ([16, 25])
    at the level the paper's model permits. *)

val plan :
  make:(unit -> Predictor.t) ->
  window:int ->
  Model.Instance.t ->
  Model.Schedule.t
(** Run the predictive planner over the whole instance.  [window >= 1]
    ([window = 1] degenerates to myopic re-planning with switching
    awareness). *)

val anticipatory_a :
  make:(unit -> Predictor.t) ->
  window:int ->
  Model.Instance.t ->
  Model.Schedule.t
(** Algorithm A with predictions: the power-up target at slot [t] is the
    slot-[t] configuration of an optimal schedule over the observed
    prefix *extended by [window] forecast slots* (clamped to capacity),
    instead of the prefix alone; the ski-rental power-down timers are
    unchanged.  With [window = 0] this is exactly algorithm A.  The
    paper's guarantee does not transfer (the forecast can mislead);
    the forecast experiment measures what anticipation buys.  Requires a
    time-independent instance. *)

val controller :
  make:(unit -> Predictor.t) ->
  window:int ->
  Model.Instance.t ->
  time:int ->
  load:float ->
  backlog:float ->
  Model.Config.t
(** The same policy as a controller closure, structurally compatible
    with {!Dcsim.Sim.controller} (the [backlog] is added to the observed
    load before planning). *)
