(** One-step and multi-step load forecasting.

    The receding-horizon baseline in {!Online.Baselines} cheats: it reads
    the true future.  Real systems forecast.  This module provides the
    classic streaming predictors — last-value, seasonal naive,
    exponential smoothing (EWMA), Holt's trend method and additive
    Holt–Winters — behind one stateful interface, plus a backtest
    harness measuring their accuracy on a trace.

    Predictors are warm-started by simply observing the stream; all are
    deterministic.  Forecasts are clamped at zero (loads are
    non-negative). *)

type t
(** A stateful predictor: feed observations in order, ask for forecasts
    of the next slots at any point. *)

val observe : t -> float -> unit
(** Append the next observed load.  Raises [Invalid_argument] on
    negative or non-finite values. *)

val forecast : t -> steps:int -> float array
(** Forecast the next [steps] loads ([steps >= 1]).  Before any
    observation, predicts zeros. *)

val observed : t -> int
(** Number of observations so far. *)

val name : t -> string
(** The predictor's label for tables. *)

(** {1 Constructors} *)

val naive_last : unit -> t
(** Predicts the last observed value, flat. *)

val seasonal_naive : period:int -> t
(** Predicts the value observed one [period] ago in the same phase;
    falls back to the last observation for phases not seen yet. *)

val ewma : alpha:float -> t
(** Exponentially weighted moving average, [alpha in (0, 1]]
    ([alpha = 1] degenerates to {!naive_last}).  Flat forecasts. *)

val holt : alpha:float -> beta:float -> t
(** Holt's linear-trend method: level plus trend, both exponentially
    smoothed; forecasts extrapolate the trend. *)

val holt_winters : alpha:float -> beta:float -> gamma:float -> period:int -> t
(** Additive Holt–Winters: level, trend, and one seasonal term per phase
    of the [period]. *)

(** {1 Backtesting} *)

type errors = {
  mae : float;   (** mean absolute error *)
  rmse : float;  (** root mean squared error *)
  mape : float;  (** mean absolute percentage error over non-zero actuals;
                     [nan] when every actual is zero *)
  samples : int; (** forecasts evaluated *)
}

val backtest : make:(unit -> t) -> ?steps:int -> ?warmup:int -> float array -> errors
(** Walk the series: after a [warmup] prefix (default: one quarter of the
    series), at each position forecast [steps] ahead (default 1), score
    the forecast for that slot against the actual, then observe it. *)
