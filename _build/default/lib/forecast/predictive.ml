let capacity_cap inst ~time = Model.Instance.capacity_at inst ~time

(* Re-plan an optimal window starting at [time]: slot one carries the
   observed demand, later slots the predictor's forecasts clamped into
   each slot's feasible range; commit the first decision. *)
let plan_step ~window ~predictor ~current inst ~time ~demand =
  let horizon = Model.Instance.horizon inst in
  let len = min window (horizon - time) in
  let base = Model.Instance.window inst ~start:time ~len in
  let forecast = Predictor.forecast predictor ~steps:len in
  let load =
    Array.init len (fun u ->
        if u = 0 then Util.Float_cmp.clamp ~lo:0. ~hi:(capacity_cap inst ~time) demand
        else
          Util.Float_cmp.clamp ~lo:0.
            ~hi:(capacity_cap inst ~time:(time + u))
            forecast.(u))
  in
  let window_inst =
    Model.Instance.make
      ~avail:(fun ~time:u ~typ -> base.Model.Instance.avail ~time:u ~typ)
      ~types:base.Model.Instance.types ~load
      ~cost:(fun ~time:u ~typ -> base.Model.Instance.cost ~time:u ~typ)
      ()
  in
  let { Offline.Dp.schedule; _ } = Offline.Dp.solve ~initial:current window_inst in
  schedule.(0)

let anticipatory_a ~make ~window inst =
  if window < 0 then invalid_arg "Predictive.anticipatory_a: window must be >= 0";
  if not inst.Model.Instance.time_independent then
    invalid_arg "Predictive.anticipatory_a: operating costs must be time-independent";
  let horizon = Model.Instance.horizon inst in
  let d = Model.Instance.num_types inst in
  let fns = Array.init d (fun typ -> inst.Model.Instance.cost ~time:0 ~typ) in
  let predictor = make () in
  let stepper = Online.Stepper.alg_a inst in
  let schedule = Array.make horizon [||] in
  for time = 0 to horizon - 1 do
    Predictor.observe predictor inst.Model.Instance.load.(time);
    (* Observed prefix extended by clamped forecasts. *)
    let w = min window (horizon - 1 - time) in
    let forecast = if w > 0 then Predictor.forecast predictor ~steps:w else [||] in
    let load =
      Array.init
        (time + 1 + w)
        (fun u ->
          if u <= time then inst.Model.Instance.load.(u)
          else
            Util.Float_cmp.clamp ~lo:0.
              ~hi:(capacity_cap inst ~time:u)
              forecast.(u - time - 1))
    in
    let extended = Model.Instance.make_static ~types:inst.Model.Instance.types ~load ~fns () in
    let { Offline.Dp.schedule = ext; _ } = Offline.Dp.solve extended in
    schedule.(time) <- Online.Stepper.step stepper ~time ~hat:ext.(time)
  done;
  schedule

let controller ~make ~window inst =
  if window < 1 then invalid_arg "Predictive.controller: window must be >= 1";
  let predictor = make () in
  let d = Model.Instance.num_types inst in
  let current = ref (Model.Config.zero d) in
  fun ~time ~load ~backlog ->
    let demand = load +. backlog in
    let next = plan_step ~window ~predictor ~current:!current inst ~time ~demand in
    Predictor.observe predictor load;
    current := next;
    Array.copy next

let plan ~make ~window inst =
  let horizon = Model.Instance.horizon inst in
  let ctrl = controller ~make ~window inst in
  Array.init horizon (fun time ->
      ctrl ~time ~load:inst.Model.Instance.load.(time) ~backlog:0.)
