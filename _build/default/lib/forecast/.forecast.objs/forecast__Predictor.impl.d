lib/forecast/predictor.ml: Array Float Printf
