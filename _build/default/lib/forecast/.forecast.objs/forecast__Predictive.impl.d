lib/forecast/predictive.ml: Array Model Offline Online Predictor Util
