lib/forecast/predictive.mli: Model Predictor
