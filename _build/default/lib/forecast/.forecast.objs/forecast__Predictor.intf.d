lib/forecast/predictor.mli:
