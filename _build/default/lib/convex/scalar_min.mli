(** One-dimensional search primitives shared by the dispatch solver.

    Everything operates on plain [float -> float] closures; convexity or
    monotonicity is a precondition stated per function. *)

val golden_section :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float * float
(** [golden_section f ~lo ~hi] minimises a unimodal (e.g. convex) [f] on
    [\[lo, hi\]] and returns [(argmin, min)].  Accuracy is [tol] in the
    argument (default [1e-10] scaled by the interval). *)

val bisect_monotone :
  ?iters:int -> (float -> float) -> lo:float -> hi:float -> target:float -> float
(** [bisect_monotone f ~lo ~hi ~target] assumes [f] non-decreasing and
    returns a point [x] where [f] crosses [target]: the supremum of
    [{x | f(x) <= target}] up to bisection accuracy, clamped to the
    interval.  If [f lo > target] it returns [lo]; if [f hi <= target]
    it returns [hi]. *)
