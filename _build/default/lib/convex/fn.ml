type t = {
  eval : float -> float;
  closed_deriv : (float -> float) option;
  desc : string;
  constant : bool;
}

let eval f z = f.eval z

let numeric_deriv f z =
  let h = 1e-6 *. Float.max 1. (Float.abs z) in
  let lo = Float.max 0. (z -. h) in
  let hi = z +. h in
  (f.eval hi -. f.eval lo) /. (hi -. lo)

let deriv f z =
  match f.closed_deriv with Some d -> d z | None -> numeric_deriv f z

let has_closed_deriv f = Option.is_some f.closed_deriv
let describe f = f.desc
let is_constant f = f.constant

let check_nonneg name x =
  if x < 0. || Float.is_nan x then
    invalid_arg (Printf.sprintf "Convex.Fn: %s must be non-negative" name)

let const c =
  check_nonneg "const" c;
  { eval = (fun _ -> c);
    closed_deriv = Some (fun _ -> 0.);
    desc = Printf.sprintf "const %.3g" c;
    constant = true }

let affine ~intercept ~slope =
  check_nonneg "intercept" intercept;
  check_nonneg "slope" slope;
  { eval = (fun z -> intercept +. (slope *. z));
    closed_deriv = Some (fun _ -> slope);
    desc = Printf.sprintf "%.3g + %.3g z" intercept slope;
    constant = slope = 0. }

let power ~idle ~coef ~expo =
  check_nonneg "idle" idle;
  check_nonneg "coef" coef;
  if expo < 1. then invalid_arg "Convex.Fn.power: expo must be >= 1";
  { eval = (fun z -> idle +. (coef *. (z ** expo)));
    closed_deriv = Some (fun z -> coef *. expo *. (z ** (expo -. 1.)));
    desc = Printf.sprintf "%.3g + %.3g z^%.3g" idle coef expo;
    constant = coef = 0. }

let quadratic ~c0 ~c1 ~c2 =
  check_nonneg "c0" c0;
  check_nonneg "c1" c1;
  check_nonneg "c2" c2;
  { eval = (fun z -> c0 +. (c1 *. z) +. (c2 *. z *. z));
    closed_deriv = Some (fun z -> c1 +. (2. *. c2 *. z));
    desc = Printf.sprintf "%.3g + %.3g z + %.3g z^2" c0 c1 c2;
    constant = c1 = 0. && c2 = 0. }

let piecewise_linear points =
  (match points with
  | [] | [ _ ] -> invalid_arg "Convex.Fn.piecewise_linear: need >= 2 points"
  | (z0, _) :: _ when z0 <> 0. ->
      invalid_arg "Convex.Fn.piecewise_linear: first point must be at z = 0"
  | _ -> ());
  let pts = Array.of_list points in
  let n = Array.length pts in
  let slopes = Array.make (n - 1) 0. in
  for i = 0 to n - 2 do
    let z0, v0 = pts.(i) and z1, v1 = pts.(i + 1) in
    if z1 <= z0 then invalid_arg "Convex.Fn.piecewise_linear: z not increasing";
    slopes.(i) <- (v1 -. v0) /. (z1 -. z0);
    if slopes.(i) < 0. then
      invalid_arg "Convex.Fn.piecewise_linear: function must be increasing";
    if i > 0 && slopes.(i) < slopes.(i - 1) -. 1e-12 then
      invalid_arg "Convex.Fn.piecewise_linear: slopes must be non-decreasing"
  done;
  let v00 = snd pts.(0) in
  if v00 < 0. then invalid_arg "Convex.Fn.piecewise_linear: negative value";
  (* Locate the segment containing z; extend the last slope beyond the end. *)
  let segment z =
    let rec go i = if i >= n - 2 || z < fst pts.(i + 1) then i else go (i + 1) in
    go 0
  in
  let eval z =
    let i = segment z in
    let z0, v0 = pts.(i) in
    v0 +. (slopes.(i) *. (z -. z0))
  in
  let closed_deriv z = slopes.(segment z) in
  { eval;
    closed_deriv = Some closed_deriv;
    desc = Printf.sprintf "piecewise-linear (%d points)" n;
    constant = Array.for_all (fun s -> s = 0.) slopes }

let max_affine pieces =
  if pieces = [] then invalid_arg "Convex.Fn.max_affine: empty";
  List.iter
    (fun (i, s) ->
      check_nonneg "intercept" i;
      check_nonneg "slope" s)
    pieces;
  let eval z =
    List.fold_left (fun acc (i, s) -> Float.max acc (i +. (s *. z))) neg_infinity pieces
  in
  let closed_deriv z =
    (* Derivative of the active piece; at ties pick the largest slope,
       which lies between the one-sided derivatives required by KKT. *)
    let v = eval z in
    List.fold_left
      (fun acc (i, s) -> if Float.abs (i +. (s *. z) -. v) <= 1e-12 *. Float.max 1. v then Float.max acc s else acc)
      0. pieces
  in
  { eval;
    closed_deriv = Some closed_deriv;
    desc = Printf.sprintf "max of %d affine pieces" (List.length pieces);
    constant = List.for_all (fun (_, s) -> s = 0.) pieces && List.length pieces = 1 }

let scale k f =
  check_nonneg "scale" k;
  { eval = (fun z -> k *. f.eval z);
    closed_deriv = Option.map (fun d z -> k *. d z) f.closed_deriv;
    desc = Printf.sprintf "%.3g * (%s)" k f.desc;
    constant = f.constant || k = 0. }

let add f g =
  { eval = (fun z -> f.eval z +. g.eval z);
    closed_deriv =
      (match (f.closed_deriv, g.closed_deriv) with
      | Some df, Some dg -> Some (fun z -> df z +. dg z)
      | _ -> None);
    desc = Printf.sprintf "(%s) + (%s)" f.desc g.desc;
    constant = f.constant && g.constant }

let compose_scaled ~outer ~inner f =
  check_nonneg "outer" outer;
  check_nonneg "inner" inner;
  { eval = (fun z -> outer *. f.eval (inner *. z));
    closed_deriv = Option.map (fun d z -> outer *. inner *. d (inner *. z)) f.closed_deriv;
    desc = Printf.sprintf "%.3g * f(%.3g z) where f = %s" outer inner f.desc;
    constant = f.constant || outer = 0. || inner = 0. }

let shift_idle c f =
  check_nonneg "shift" c;
  { eval = (fun z -> c +. f.eval z);
    closed_deriv = f.closed_deriv;
    desc = Printf.sprintf "%.3g + (%s)" c f.desc;
    constant = f.constant }

let sample_grid ~lo ~hi n = Array.init n (fun i -> lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let check_convex ?(samples = 64) ~lo ~hi f =
  let zs = sample_grid ~lo ~hi samples in
  let ok = ref true in
  for i = 0 to samples - 3 do
    let a = f.eval zs.(i) and b = f.eval zs.(i + 1) and c = f.eval zs.(i + 2) in
    (* Midpoint convexity on an even grid: b <= (a + c) / 2 + tolerance. *)
    if b > ((a +. c) /. 2.) +. (1e-9 *. Float.max 1. (Float.abs b)) then ok := false
  done;
  !ok

let check_increasing ?(samples = 64) ~lo ~hi f =
  let zs = sample_grid ~lo ~hi samples in
  let ok = ref true in
  for i = 0 to samples - 2 do
    let a = f.eval zs.(i) and b = f.eval zs.(i + 1) in
    if b < a -. (1e-9 *. Float.max 1. (Float.abs a)) then ok := false
  done;
  !ok
