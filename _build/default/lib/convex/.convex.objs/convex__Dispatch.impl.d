lib/convex/dispatch.ml: Array Float Fn Scalar_min Util
