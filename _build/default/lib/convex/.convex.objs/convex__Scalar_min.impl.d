lib/convex/scalar_min.ml: Float
