lib/convex/dispatch.mli: Fn
