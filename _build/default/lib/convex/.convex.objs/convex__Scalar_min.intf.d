lib/convex/scalar_min.mli:
