lib/convex/fn.ml: Array Float List Option Printf
