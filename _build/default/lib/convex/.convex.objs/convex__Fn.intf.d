lib/convex/fn.mli:
