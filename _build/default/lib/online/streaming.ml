type t = {
  inst : Model.Instance.t;  (* built over the mutable load buffer *)
  loads : float array;
  engine : Prefix_opt.t;
  stepper : Stepper.t;
  capacity : float;
  mutable clock : int;
  mutable current : Model.Config.t;
}

let build ~max_horizon ~types ~make_inst ~make_stepper =
  if max_horizon < 1 then invalid_arg "Streaming: max_horizon must be >= 1";
  (* The instance reads this buffer; slot t is written before the engine
     ever evaluates it, so the mutation is invisible to the algorithms. *)
  let loads = Array.make max_horizon 0. in
  let inst = make_inst ~loads in
  let capacity =
    Array.fold_left
      (fun acc st ->
        acc +. (float_of_int st.Model.Server_type.count *. st.Model.Server_type.cap))
      0. types
  in
  { inst;
    loads;
    engine = Prefix_opt.create inst;
    stepper = make_stepper inst;
    capacity;
    clock = 0;
    current = Model.Config.zero (Array.length types) }

let alg_a ?(max_horizon = 4096) ~types ~fns () =
  build ~max_horizon ~types
    ~make_inst:(fun ~loads -> Model.Instance.make_static ~types ~load:loads ~fns ())
    ~make_stepper:Stepper.alg_a

let alg_b ?(max_horizon = 4096) ~types ~cost () =
  build ~max_horizon ~types
    ~make_inst:(fun ~loads -> Model.Instance.make ~types ~load:loads ~cost ())
    ~make_stepper:Stepper.alg_b

let feed t volume =
  if volume < 0. || not (Float.is_finite volume) then
    invalid_arg "Streaming.feed: volume must be finite and non-negative";
  if volume > t.capacity +. 1e-9 then
    invalid_arg "Streaming.feed: volume exceeds the fleet capacity";
  if t.clock >= Array.length t.loads then
    invalid_arg "Streaming.feed: session horizon exhausted";
  let time = t.clock in
  t.loads.(time) <- volume;
  let { Prefix_opt.last = hat; _ } = Prefix_opt.step t.engine in
  let x = Stepper.step t.stepper ~time ~hat in
  t.clock <- time + 1;
  t.current <- x;
  Array.copy x

let fed t = t.clock
let config t = Array.copy t.current
