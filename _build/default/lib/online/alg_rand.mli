(** Randomized power-down variant (extension).

    The paper's deterministic timers pay the classic ski-rental factor 2
    on switching-plus-idle cost; its companion work [4] shows that for
    homogeneous data centers randomisation lowers the achievable ratio
    to 2 overall.  This module implements the standard randomised
    ski-rental rule on top of the algorithm-B skeleton: each powered-up
    group draws a threshold [Z in [0, 1]] with density [e^z / (e - 1)]
    and is powered down once its accumulated idle cost since power-up
    exceeds [Z * beta_j] — in expectation this pays a factor
    [e / (e - 1) ~ 1.582] instead of 2 on each block.

    The power-up rule (track the optimal prefix schedule) is unchanged,
    so feasibility is inherited; the improvement is measured empirically
    by the benchmark harness rather than proven here. *)

type result = {
  schedule : Model.Schedule.t;
  prefix_last : Model.Config.t array;
  thresholds : float list;  (** the drawn [Z] values, in power-up order *)
}

val run : rng:Util.Prng.t -> Model.Instance.t -> result
(** Requires every [beta_j > 0].  Deterministic given the PRNG state. *)

val draw_threshold : Util.Prng.t -> float
(** Sample from density [e^z / (e - 1)] on [\[0, 1\]] by inversion. *)
