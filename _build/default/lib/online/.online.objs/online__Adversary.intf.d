lib/online/adversary.mli: Model
