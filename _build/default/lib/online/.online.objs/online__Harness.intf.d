lib/online/harness.mli: Model
