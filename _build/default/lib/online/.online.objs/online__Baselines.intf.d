lib/online/baselines.mli: Model
