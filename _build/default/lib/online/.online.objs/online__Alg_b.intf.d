lib/online/alg_b.mli: Model Offline
