lib/online/streaming.ml: Array Float Model Prefix_opt Stepper
