lib/online/stepper.ml: Array Float Hashtbl List Model
