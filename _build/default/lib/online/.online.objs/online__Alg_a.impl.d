lib/online/alg_a.ml: Array Float List Logs Model Prefix_opt Stepper
