lib/online/baselines.ml: Array Float Model Offline Prefix_opt
