lib/online/alg_rand.mli: Model Util
