lib/online/alg_a.mli: Model Offline
