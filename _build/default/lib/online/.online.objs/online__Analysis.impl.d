lib/online/analysis.ml: Alg_a Alg_b Array Float List Model
