lib/online/alg_c.ml: Alg_b Array Convex Float Model
