lib/online/alg_c.mli: Model
