lib/online/alg_b.ml: Array Float Model Prefix_opt Stepper
