lib/online/harness.ml: Alg_a Alg_b Alg_c Baselines Convex List Model Offline Printf
