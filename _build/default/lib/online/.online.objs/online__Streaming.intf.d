lib/online/streaming.mli: Convex Model
