lib/online/prefix_opt.ml: Array Float Model Offline
