lib/online/prefix_opt.mli: Model Offline
