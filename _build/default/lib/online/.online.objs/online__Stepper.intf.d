lib/online/stepper.mli: Model
