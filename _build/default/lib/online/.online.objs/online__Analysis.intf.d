lib/online/analysis.mli: Alg_a Alg_b Model
