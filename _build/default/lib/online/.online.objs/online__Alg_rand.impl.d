lib/online/alg_rand.ml: Array Float List Model Prefix_opt Util
