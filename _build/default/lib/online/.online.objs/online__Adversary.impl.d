lib/online/adversary.ml: Alg_a Array Convex Float List Model Offline
