(** Analysis machinery from the competitive proofs (Sections 2 and 3):
    the blocks [A_{j,i}] — maximal activity intervals of individual
    powered-up servers — and the special time slots [tau_{j,k}]
    constructed in reverse time such that every block contains exactly
    one special slot (Figure 2).  Exposing these lets the experiment
    harness render Figure 2 and the test-suite check the combinatorial
    claims the proofs of Lemmas 7 and 12 rely on. *)

type block = {
  start : int;   (** power-up slot [s_{j,i}] (0-based) *)
  stop : int;    (** last active slot (inclusive) *)
  count : int;   (** servers powered up together at [start] *)
}

val blocks_a : Alg_a.result -> typ:int -> horizon:int -> block list
(** Blocks of algorithm A for one type: each power-up of [n] servers at
    slot [s] forms a block [\[s, s + t_j - 1\]] (clipped to the horizon;
    unbounded when the type never powers down). *)

val blocks_b : Alg_b.result -> typ:int -> horizon:int -> block list
(** Blocks of algorithm B, reconstructed from its power-up and power-down
    events (a block powered up at [s] and shut down at slot [e] covers
    [\[s, e - 1\]]). *)

val special_slots : block list -> int list
(** The slots [tau_{j,1} < ... < tau_{j,n'}]: walking backwards from the
    last block start, each next special slot is the last block start
    whose block ends before the current special slot.  Requires the
    blocks sorted by start (as returned by [blocks_a]/[blocks_b]). *)

val blocks_per_special : block list -> int list -> int list
(** For each special slot, how many blocks contain it ([|B_{j,k}|]).
    The proofs require every block to contain exactly one special slot:
    the returned counts then sum to the number of blocks. *)

val block_cost : Model.Instance.t -> typ:int -> block -> float
(** The switching-plus-idle cost [H_{j,i}] of one block (per server,
    times the block's [count]): [count * (beta_j + sum of l_{t,j} over
    the block's slots)] — eq. (4) for algorithm A, eq. (10) for B. *)

val lemma6_bound : Model.Instance.t -> typ:int -> block -> float
(** Algorithm A's per-block bound (Lemma 6):
    [count * 2 min(beta_j + f_j(0), t_j f_j(0))].  Only meaningful on
    time-independent instances with [f_j(0) > 0]. *)

val lemma11_bound : Model.Instance.t -> typ:int -> block -> float
(** Algorithm B's per-block bound (Lemma 11):
    [count * (2 beta_j + max_t l_{t,j})]. *)

val load_dependent_total : Model.Instance.t -> Model.Schedule.t -> float
(** [sum_t sum_j L_{t,j}(X)] — the left side of Lemma 5; the lemma
    bounds it by the total cost of the final optimal prefix schedule. *)
