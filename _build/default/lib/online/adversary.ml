type chasing_outcome = {
  steps : int;
  online_cost : float;
  offline_cost : float;
  ratio : float;
}

let popcount v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go v 0

(* Power-up cost of moving between bit-mask vertices with beta_j = 1. *)
let up_cost ~from_ ~to_ = popcount (to_ land lnot from_)

let chasing_lower_bound ~d =
  if d < 1 || d > 20 then invalid_arg "Adversary.chasing_lower_bound: d in [1, 20]";
  let vertices = 1 lsl d in
  let steps = vertices - 1 in
  let visited = Array.make vertices false in
  let pos = ref 0 in
  visited.(0) <- true;
  let online_cost = ref 0 in
  for _ = 1 to steps do
    (* The adversary forbids the current vertex; the lazy player moves to
       the cheapest other vertex (a free power-down when possible,
       otherwise one power-up). *)
    let best = ref (-1) and best_cost = ref max_int in
    for v = 0 to vertices - 1 do
      if v <> !pos then begin
        let c = up_cost ~from_:!pos ~to_:v in
        if c < !best_cost then begin
          best_cost := c;
          best := v
        end
      end
    done;
    online_cost := !online_cost + !best_cost;
    pos := !best;
    visited.(!pos) <- true
  done;
  (* Offline: jump once to any vertex the player (and hence the adversary)
     never touches; it exists because only [steps] vertices get forbidden. *)
  let refuge = ref (-1) in
  for v = vertices - 1 downto 0 do
    if not visited.(v) then refuge := v
  done;
  let offline_cost =
    if !refuge >= 0 then float_of_int (up_cost ~from_:0 ~to_:!refuge)
    else float_of_int d
  in
  let offline_cost = Float.max offline_cost 1e-9 in
  { steps;
    online_cost = float_of_int !online_cost;
    offline_cost;
    ratio = float_of_int !online_cost /. offline_cost }

type reactive_outcome = {
  instance : Model.Instance.t;
  alg_cost : float;
  opt_cost : float;
  forced_ratio : float;
}

let reactive_a ?(rounds = 8) ~beta ~idle () =
  if beta <= 0. || idle <= 0. then
    invalid_arg "Adversary.reactive_a: beta and idle must be positive";
  if rounds < 1 then invalid_arg "Adversary.reactive_a: rounds must be >= 1";
  let types = [| Model.Server_type.make ~name:"node" ~count:1 ~switching_cost:beta ~cap:1. () |] in
  let fns = [| Convex.Fn.const idle |] in
  let instance_of loads =
    Model.Instance.make_static ~types ~load:(Array.of_list (List.rev loads)) ~fns ()
  in
  (* Switching cost is only paid when x_{t-1} = 0 and the load forces a
     power-up at t (a same-slot down+up cancels in the schedule), so the
     adversary issues a load exactly when A's server was off in the
     previous slot.  A is deterministic, so simulating it on each prefix
     is a legitimate adaptive-adversary computation. *)
  let server_on_last loads =
    let r = Alg_a.run (instance_of loads) in
    let col = Model.Schedule.column r.Alg_a.schedule ~typ:0 in
    col.(Array.length col - 1) = 1
  in
  let rec build loads issued =
    if issued >= rounds then loads
    else if server_on_last loads then build (0. :: loads) issued
    else build (1. :: loads) (issued + 1)
  in
  (* Seed with one demanded slot, then react; stop after [rounds] loads
     and a final cool-down slot so the last timer expires naturally. *)
  let tbar = max 1 (int_of_float (Float.ceil (beta /. idle))) in
  let loads = build [ 1. ] 1 in
  let loads = List.init tbar (fun _ -> 0.) @ loads in
  let instance = instance_of loads in
  let alg = Alg_a.run instance in
  let alg_cost = Model.Cost.schedule instance alg.Alg_a.schedule in
  let opt_cost = (Offline.Dp.solve_optimal instance).Offline.Dp.cost in
  { instance; alg_cost; opt_cost; forced_ratio = alg_cost /. opt_cost }
