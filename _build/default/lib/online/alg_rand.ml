type result = {
  schedule : Model.Schedule.t;
  prefix_last : Model.Config.t array;
  thresholds : float list;
}

(* Inverse-CDF sampling: F(z) = (e^z - 1) / (e - 1), so
   F^{-1}(u) = ln(1 + u (e - 1)). *)
let draw_threshold rng =
  let u = Util.Prng.float rng 1. in
  log (1. +. (u *. (Float.exp 1. -. 1.)))

let run ~rng inst =
  let horizon = Model.Instance.horizon inst in
  let d = Model.Instance.num_types inst in
  Array.iter
    (fun st ->
      if st.Model.Server_type.switching_cost <= 0. then
        invalid_arg "Alg_rand.run: every switching cost must be positive")
    inst.Model.Instance.types;
  let engine = Prefix_opt.create inst in
  (* Outstanding groups per type: (accumulated idle cost, budget, count).
     Accumulation starts the slot after power-up, as in algorithm B. *)
  let groups = Array.make d [] in
  let x = Array.make d 0 in
  let schedule = Array.make horizon [||] in
  let prefix_last = Array.make horizon [||] in
  let thresholds = ref [] in
  for time = 0 to horizon - 1 do
    let { Prefix_opt.last = hat; _ } = Prefix_opt.step engine in
    prefix_last.(time) <- hat;
    for typ = 0 to d - 1 do
      let l = Model.Instance.idle_cost inst ~time ~typ in
      let beta = inst.Model.Instance.types.(typ).Model.Server_type.switching_cost in
      (* Charge this slot's idle cost to every outstanding group, then
         power down those whose randomised budget is exhausted — they are
         inactive from this slot on. *)
      let updated =
        List.map (fun (acc, budget, count) -> (acc +. l, budget, count)) groups.(typ)
      in
      let leaving, staying = List.partition (fun (acc, budget, _) -> acc > budget) updated in
      groups.(typ) <- staying;
      List.iter (fun (_, _, count) -> x.(typ) <- x.(typ) - count) leaving;
      if x.(typ) < hat.(typ) then begin
        let up = hat.(typ) - x.(typ) in
        let z = draw_threshold rng in
        thresholds := z :: !thresholds;
        (* Fresh group: the power-up slot's own idle cost is excluded, so
           accumulation starts at zero. *)
        groups.(typ) <- groups.(typ) @ [ (0., z *. beta, up) ];
        x.(typ) <- hat.(typ)
      end
    done;
    schedule.(time) <- Array.copy x
  done;
  { schedule; prefix_last; thresholds = List.rev !thresholds }
