type block = { start : int; stop : int; count : int }

let blocks_a result ~typ ~horizon =
  let runtime = result.Alg_a.runtimes.(typ) in
  List.filter_map
    (fun (time, j, count) ->
      if j <> typ then None
      else
        let stop =
          match runtime with
          | None -> horizon - 1
          | Some tbar -> min (horizon - 1) (time + tbar - 1)
        in
        Some { start = time; stop; count })
    result.Alg_a.power_ups

let blocks_b result ~typ ~horizon =
  (* Pair each power-up with the power-down of the same group: algorithm B
     shuts whole groups, so the (slot, count) pairs match one-to-one in
     chronological order. *)
  let ups = List.filter (fun (_, j, _) -> j = typ) result.Alg_b.power_ups in
  let downs = ref (List.filter (fun (_, j, _) -> j = typ) result.Alg_b.power_downs) in
  List.map
    (fun (start, _, count) ->
      (* Find this group's shutdown: the earliest remaining power-down
         with the same count whose slot is after [start]. *)
      let rec take acc = function
        | [] -> (None, List.rev acc)
        | (slot, _, c) :: rest when c = count && slot > start ->
            (Some slot, List.rev_append acc rest)
        | other :: rest -> take (other :: acc) rest
      in
      let stop_slot, rest = take [] !downs in
      downs := rest;
      match stop_slot with
      | Some e -> { start; stop = min (horizon - 1) (e - 1); count }
      | None -> { start; stop = horizon - 1; count })
    ups

let special_slots blocks =
  match List.rev blocks with
  | [] -> []
  | last :: _ ->
      (* Walk backwards: given tau, the previous special slot is the last
         block start s with block end < tau (i.e. s's block misses tau). *)
      let starts_desc = List.rev_map (fun b -> b) blocks in
      let rec go tau acc =
        let prev =
          List.find_opt (fun b -> b.start < tau && b.stop < tau) starts_desc
        in
        match prev with
        | Some b -> go b.start (b.start :: acc)
        | None -> acc
      in
      go last.start [ last.start ]

let blocks_per_special blocks taus =
  List.map
    (fun tau ->
      List.length (List.filter (fun b -> b.start <= tau && tau <= b.stop) blocks))
    taus

let block_cost inst ~typ block =
  let beta = inst.Model.Instance.types.(typ).Model.Server_type.switching_cost in
  let idle = ref 0. in
  for time = block.start to block.stop do
    idle := !idle +. Model.Instance.idle_cost inst ~time ~typ
  done;
  float_of_int block.count *. (beta +. !idle)

let lemma6_bound inst ~typ block =
  let beta = inst.Model.Instance.types.(typ).Model.Server_type.switching_cost in
  let idle = Model.Instance.idle_cost inst ~time:0 ~typ in
  if idle <= 0. then invalid_arg "Analysis.lemma6_bound: needs f_j(0) > 0";
  let tbar = Float.of_int (max 1 (int_of_float (Float.ceil (beta /. idle)))) in
  float_of_int block.count *. 2. *. Float.min (beta +. idle) (tbar *. idle)

let lemma11_bound inst ~typ block =
  let beta = inst.Model.Instance.types.(typ).Model.Server_type.switching_cost in
  let worst = ref 0. in
  for time = 0 to Model.Instance.horizon inst - 1 do
    worst := Float.max !worst (Model.Instance.idle_cost inst ~time ~typ)
  done;
  float_of_int block.count *. ((2. *. beta) +. !worst)

let load_dependent_total inst schedule =
  let acc = ref 0. in
  Array.iteri
    (fun time x ->
      for typ = 0 to Model.Instance.num_types inst - 1 do
        acc := !acc +. Model.Cost.load_dependent inst ~time x ~typ
      done)
    schedule;
  !acc
