(** Streaming deployment API.

    The batch runners take a complete {!Model.Instance.t} and merely
    promise not to peek ahead; a deployed controller receives loads one
    slot at a time with no horizon in hand.  A streaming session owns a
    pre-sized load buffer, writes each arriving volume into it, and
    advances the same prefix engine and power-down state machine the
    batch algorithms use — so a streamed run is decision-for-decision
    identical to the batch run on the same loads (a tested identity). *)

type t

val alg_a :
  ?max_horizon:int ->
  types:Model.Server_type.t array ->
  fns:Convex.Fn.t array ->
  unit ->
  t
(** A streaming session running algorithm A (time-independent costs,
    one function per type).  [max_horizon] bounds the number of slots
    the session can absorb (default 4096). *)

val alg_b :
  ?max_horizon:int ->
  types:Model.Server_type.t array ->
  cost:(time:int -> typ:int -> Convex.Fn.t) ->
  unit ->
  t
(** A streaming session running algorithm B (time-dependent costs; the
    [cost] closure is consulted as slots arrive). *)

val feed : t -> float -> Model.Config.t
(** Deliver the next slot's job volume and obtain the configuration to
    run during that slot.  Raises [Invalid_argument] on a negative or
    non-finite volume, when the volume exceeds the fleet capacity
    (no feasible configuration), or past [max_horizon]. *)

val fed : t -> int
(** Slots processed so far. *)

val config : t -> Model.Config.t
(** The currently active configuration (all-off before the first
    [feed]). *)
