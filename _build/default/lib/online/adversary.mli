(** Adversarial constructions.

    [chasing_lower_bound] reproduces the related-work example from the
    paper showing that *general* discrete convex function chasing has an
    [Omega(2^d / d)] competitive ratio — the reason the paper restricts
    attention to operating costs of the form of equation (1).  The
    adversary makes the online player's current hypercube vertex
    infinitely expensive each slot for [2^d - 1] slots; any online
    player keeps paying switching cost while the offline player jumps
    once to a vertex that is never forbidden. *)

type chasing_outcome = {
  steps : int;         (** [2^d - 1] slots played *)
  online_cost : float; (** switching cost paid by the simulated player *)
  offline_cost : float;(** cost of the single offline jump ([<= d]) *)
  ratio : float;
}

val chasing_lower_bound : d:int -> chasing_outcome
(** Simulates a lazy online player (it escapes each forbidden vertex as
    cheaply as possible, preferring free power-downs) against the
    forbid-current-vertex adversary on [{0,1}^d] with [beta_j = 1].
    Requires [1 <= d <= 20]. *)

type reactive_outcome = {
  instance : Model.Instance.t;  (** the constructed adversarial instance *)
  alg_cost : float;             (** algorithm A's cost on it *)
  opt_cost : float;             (** the exact offline optimum *)
  forced_ratio : float;
}

val reactive_a : ?rounds:int -> beta:float -> idle:float -> unit -> reactive_outcome
(** The classic ski-rental adversary against algorithm A for [d = 1]
    ([m = 1], constant operating cost [idle], switching cost [beta]):
    it issues a unit load exactly in the slots where A's server is off
    and nothing while it runs, so A pays [beta + t_1 * idle ~ 2 beta]
    per round while the optimum simply stays powered on.  As
    [idle / beta -> 0] and [rounds] grows the forced ratio approaches
    the lower bound [2 = 2d] of [5].  Because A is deterministic, the
    adversary constructs the instance by simulating A on every prefix —
    a legitimate (adaptive) adversary argument. *)
