test/test_fractional.ml: Alcotest Array Convex Float Fractional List Model Offline Online Printf Sim Util
