test/test_online.ml: Alcotest Array Convex Float List Model Offline Online Printf Sim String Util
