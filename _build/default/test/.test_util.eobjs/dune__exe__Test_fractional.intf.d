test/test_fractional.mli:
