test/test_dcsim.ml: Alcotest Array Convex Dcsim Float List Model Offline Online Printf Sim Util
