test/test_planner.ml: Alcotest Array Convex Model Offline Planner Sim Util
