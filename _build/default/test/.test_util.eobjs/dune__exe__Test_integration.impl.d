test/test_integration.ml: Alcotest Core Filename List String
