test/test_spec.ml: Alcotest Array Convex Filename Float Fun Model Offline Out_channel Result Sim Sys Util
