test/test_sim.ml: Alcotest Array Convex Float Model Sim Util
