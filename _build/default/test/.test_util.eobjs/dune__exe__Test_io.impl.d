test/test_io.ml: Alcotest Array Filename Fun List Model Offline Sim Sys Util
