test/test_dcsim.mli:
