test/test_forecast.ml: Alcotest Array Convex Float Forecast List Model Offline Online Printf Sim
