test/test_model.ml: Alcotest Array Convex Float List Model Offline Online Printf Util
