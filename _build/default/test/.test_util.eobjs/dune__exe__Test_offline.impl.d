test/test_offline.ml: Alcotest Array Convex Float List Model Offline Online Printf Sim Util
