test/test_props.ml: Alcotest Array Convex Dcsim Filename Float Fractional Fun List Model Offline Online Printf QCheck2 QCheck_alcotest Sim Sys Util
