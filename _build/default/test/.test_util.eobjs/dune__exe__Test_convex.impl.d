test/test_convex.ml: Alcotest Array Convex Float
