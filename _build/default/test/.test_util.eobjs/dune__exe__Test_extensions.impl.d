test/test_extensions.ml: Alcotest Array Convex Float List Model Offline Online Printf Sim Util
