test/test_util.ml: Alcotest Array Float Fun List Printf String Util
