(* Unit tests for the simulation substrate: workload generators and the
   named scenarios. *)

let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))
let checki = Alcotest.(check int)

let nonneg xs = Array.for_all (fun x -> x >= 0.) xs

(* --- Workload --- *)

let test_constant () =
  let w = Sim.Workload.constant ~horizon:5 ~level:2. in
  checki "length" 5 (Array.length w);
  Array.iter (fun x -> checkf 0. "level" 2. x) w;
  checkb "negative rejected" true
    (try ignore (Sim.Workload.constant ~horizon:1 ~level:(-1.)); false
     with Invalid_argument _ -> true)

let test_diurnal_range_and_phase () =
  let w = Sim.Workload.diurnal ~horizon:48 ~period:24 ~base:1. ~peak:9. () in
  checki "length" 48 (Array.length w);
  checkb "within range" true (Array.for_all (fun x -> x >= 1. -. 1e-9 && x <= 9. +. 1e-9) w);
  checkf 1e-9 "trough at t=0" 1. w.(0);
  checkf 1e-9 "peak mid-period" 9. w.(12);
  checkf 1e-9 "periodic" w.(3) w.(27)

let test_diurnal_noise_deterministic () =
  let mk () =
    let rng = Util.Prng.create 5 in
    Sim.Workload.diurnal ~noise:0.2 ~rng ~horizon:24 ~period:12 ~base:0.5 ~peak:4. ()
  in
  Alcotest.(check (array (float 0.))) "same seed, same trace" (mk ()) (mk ());
  checkb "non-negative" true (nonneg (mk ()))

let test_bursty_pattern () =
  let w = Sim.Workload.bursty ~horizon:10 ~burst:2 ~gap:3 ~height:5. ~base:1. () in
  Alcotest.(check (array (float 0.)))
    "pattern" [| 5.; 5.; 1.; 1.; 1.; 5.; 5.; 1.; 1.; 1. |] w

let test_random_walk_bounds () =
  let rng = Util.Prng.create 9 in
  let w = Sim.Workload.random_walk ~rng ~horizon:500 ~start:5. ~step:1. ~lo:0. ~hi:10. in
  checkb "bounded" true (Array.for_all (fun x -> x >= 0. && x <= 10.) w)

let test_spikes () =
  let rng = Util.Prng.create 10 in
  let w = Sim.Workload.spikes ~rng ~horizon:2000 ~base:1. ~height:4. ~rate:0.25 in
  checkb "two levels only" true (Array.for_all (fun x -> x = 1. || x = 5.) w);
  let spike_count = Array.fold_left (fun acc x -> if x = 5. then acc + 1 else acc) 0 w in
  (* Rate 0.25 over 2000 slots: expect about 500 spikes. *)
  checkb "rate plausible" true (spike_count > 350 && spike_count < 650)

let test_mmpp_regimes () =
  let rng = Util.Prng.create 12 in
  let w = Sim.Workload.mmpp ~rng ~horizon:3000 ~low:1. ~high:8. ~switch_prob:0.05 ~jitter:0. in
  checkb "non-negative" true (nonneg w);
  checkb "two levels without jitter" true (Array.for_all (fun x -> x = 1. || x = 8.) w);
  (* Both regimes occur. *)
  checkb "low occurs" true (Array.exists (( = ) 1.) w);
  checkb "high occurs" true (Array.exists (( = ) 8.) w);
  (* Regimes persist: fewer switches than a fair coin would produce. *)
  let switches = ref 0 in
  for i = 1 to Array.length w - 1 do
    if w.(i) <> w.(i - 1) then incr switches
  done;
  checkb "sticky regimes" true (!switches < 400)

let test_mmpp_jitter () =
  let rng = Util.Prng.create 13 in
  let w = Sim.Workload.mmpp ~rng ~horizon:500 ~low:1. ~high:8. ~switch_prob:0.1 ~jitter:0.2 in
  checkb "non-negative with jitter" true (nonneg w);
  checkb "bad args" true
    (try ignore (Sim.Workload.mmpp ~rng ~horizon:1 ~low:5. ~high:1. ~switch_prob:0.1 ~jitter:0.); false
     with Invalid_argument _ -> true)

let test_weekly_shape () =
  let w =
    Sim.Workload.weekly ~weeks:2 ~day:24 ~weekday_peak:10. ~weekend_peak:4. ~base:1. ()
  in
  checki "two weeks" (2 * 7 * 24) (Array.length w);
  (* Weekday noon beats weekend noon. *)
  checkb "weekday peaks higher" true (w.(12) > w.((5 * 24) + 12));
  checkf 1e-9 "weekday noon" 10. w.(12);
  checkf 1e-9 "weekend noon" 4. w.((5 * 24) + 12);
  checkf 1e-9 "periodic across weeks" w.(12) w.((7 * 24) + 12);
  checkb "bad args" true
    (try
       ignore
         (Sim.Workload.weekly ~weeks:0 ~day:24 ~weekday_peak:1. ~weekend_peak:1. ~base:0. ());
       false
     with Invalid_argument _ -> true)

let test_add_clamp_scale () =
  let a = [| 1.; 2. |] and b = [| 3.; 4. |] in
  Alcotest.(check (array (float 0.))) "add" [| 4.; 6. |] (Sim.Workload.add a b);
  Alcotest.(check (array (float 0.))) "clamp" [| 1.; 1.5 |]
    (Sim.Workload.clamp ~lo:0. ~hi:1.5 (Sim.Workload.add a [| 0.; 0. |] |> Array.map (fun x -> x)));
  let scaled = Sim.Workload.scale_to_peak ~peak:10. [| 1.; 2.; 5. |] in
  Alcotest.(check (array (float 1e-9))) "scaled" [| 2.; 4.; 10. |] scaled;
  Alcotest.(check (array (float 0.))) "all-zero unchanged" [| 0.; 0. |]
    (Sim.Workload.scale_to_peak ~peak:10. [| 0.; 0. |])

let test_add_length_mismatch () =
  checkb "raises" true
    (try ignore (Sim.Workload.add [| 1. |] [| 1.; 2. |]); false
     with Invalid_argument _ -> true)

(* --- Scenarios --- *)

let feasible_and_shaped name inst ~d =
  checkb (name ^ " feasible") true (Model.Instance.feasible_load inst);
  checki (name ^ " types") d (Model.Instance.num_types inst);
  checkb (name ^ " non-negative load") true (nonneg inst.Model.Instance.load)

let test_cpu_gpu () =
  let inst = Sim.Scenarios.cpu_gpu () in
  feasible_and_shaped "cpu_gpu" inst ~d:2;
  checkb "time independent" true inst.Model.Instance.time_independent

let test_homogeneous () =
  let inst = Sim.Scenarios.homogeneous () in
  feasible_and_shaped "homogeneous" inst ~d:1

let test_three_tier () =
  let inst = Sim.Scenarios.three_tier () in
  feasible_and_shaped "three_tier" inst ~d:3

let test_time_varying_costs () =
  let inst = Sim.Scenarios.time_varying_costs () in
  feasible_and_shaped "time_varying" inst ~d:2;
  checkb "time dependent" false inst.Model.Instance.time_independent;
  (* Idle costs actually vary over time. *)
  let l0 = Model.Instance.idle_cost inst ~time:0 ~typ:0 in
  let l12 = Model.Instance.idle_cost inst ~time:12 ~typ:0 in
  checkb "idle cost varies" true (Float.abs (l0 -. l12) > 1e-6)

let test_load_independent () =
  let inst = Sim.Scenarios.load_independent ~d:3 ~horizon:6 ~seed:2 in
  feasible_and_shaped "load_independent" inst ~d:3;
  for typ = 0 to 2 do
    checkb "constant" true (Convex.Fn.is_constant (inst.Model.Instance.cost ~time:0 ~typ))
  done

let test_random_instances_deterministic () =
  let mk seed =
    let rng = Util.Prng.create seed in
    Sim.Scenarios.random_static ~rng ~d:2 ~horizon:4 ~max_count:3
  in
  let a = mk 3 and b = mk 3 in
  Alcotest.(check (array (float 0.))) "same loads" a.Model.Instance.load b.Model.Instance.load;
  checkf 0. "same idle cost"
    (Model.Instance.idle_cost a ~time:0 ~typ:0)
    (Model.Instance.idle_cost b ~time:0 ~typ:0)

let test_random_instances_feasible () =
  let rng = Util.Prng.create 4 in
  for _ = 1 to 20 do
    let s = Sim.Scenarios.random_static ~rng ~d:3 ~horizon:5 ~max_count:3 in
    checkb "static feasible" true (Model.Instance.feasible_load s);
    let dy = Sim.Scenarios.random_dynamic ~rng ~d:2 ~horizon:5 ~max_count:3 in
    checkb "dynamic feasible" true (Model.Instance.feasible_load dy);
    checkb "dynamic flagged" false dy.Model.Instance.time_independent
  done

let test_resonant_bursts_structure () =
  let inst = Sim.Scenarios.resonant_bursts ~d:2 ~rounds:3 in
  feasible_and_shaped "resonant" inst ~d:2;
  (* Bursts targeting type 1 must exceed type 0's capacity (1). *)
  let has_forcing = Array.exists (fun l -> l > 1.) inst.Model.Instance.load in
  checkb "contains forcing bursts" true has_forcing;
  checkb "load independent" true
    (Convex.Fn.is_constant (inst.Model.Instance.cost ~time:0 ~typ:0))

let test_geo_shift_structure () =
  let inst = Sim.Scenarios.geo_shift () in
  feasible_and_shaped "geo" inst ~d:2;
  checkb "time dependent" false inst.Model.Instance.time_independent;
  (* Prices are phase-shifted: when west is cheap, east is dear. *)
  let w0 = Model.Instance.idle_cost inst ~time:6 ~typ:0 in
  let e0 = Model.Instance.idle_cost inst ~time:6 ~typ:1 in
  let w12 = Model.Instance.idle_cost inst ~time:18 ~typ:0 in
  let e12 = Model.Instance.idle_cost inst ~time:18 ~typ:1 in
  checkb "opposite phases" true ((w0 -. e0) *. (w12 -. e12) < 0.)

let test_maintenance_structure () =
  let inst = Sim.Scenarios.maintenance () in
  checkb "size varying" true inst.Model.Instance.size_varying;
  checki "window cap" 2 (inst.Model.Instance.avail ~time:12 ~typ:0);
  checki "full outside window" 6 (inst.Model.Instance.avail ~time:2 ~typ:0);
  checki "expansion" 4 (inst.Model.Instance.avail ~time:25 ~typ:1);
  checkb "loads fit availability" true (Model.Instance.feasible_load inst)

let () =
  Alcotest.run "sim"
    [ ( "workload",
        [ Alcotest.test_case "constant" `Quick test_constant;
          Alcotest.test_case "diurnal range and phase" `Quick test_diurnal_range_and_phase;
          Alcotest.test_case "diurnal noise deterministic" `Quick
            test_diurnal_noise_deterministic;
          Alcotest.test_case "bursty pattern" `Quick test_bursty_pattern;
          Alcotest.test_case "random walk bounds" `Quick test_random_walk_bounds;
          Alcotest.test_case "spikes" `Quick test_spikes;
          Alcotest.test_case "weekly shape" `Quick test_weekly_shape;
          Alcotest.test_case "mmpp regimes" `Quick test_mmpp_regimes;
          Alcotest.test_case "mmpp jitter and validation" `Quick test_mmpp_jitter;
          Alcotest.test_case "add/clamp/scale" `Quick test_add_clamp_scale;
          Alcotest.test_case "length mismatch" `Quick test_add_length_mismatch
        ] );
      ( "scenarios",
        [ Alcotest.test_case "cpu_gpu" `Quick test_cpu_gpu;
          Alcotest.test_case "homogeneous" `Quick test_homogeneous;
          Alcotest.test_case "three_tier" `Quick test_three_tier;
          Alcotest.test_case "time_varying_costs" `Quick test_time_varying_costs;
          Alcotest.test_case "load_independent" `Quick test_load_independent;
          Alcotest.test_case "random deterministic" `Quick test_random_instances_deterministic;
          Alcotest.test_case "random feasible" `Quick test_random_instances_feasible;
          Alcotest.test_case "resonant bursts" `Quick test_resonant_bursts_structure;
          Alcotest.test_case "geo shift" `Quick test_geo_shift_structure;
          Alcotest.test_case "maintenance" `Quick test_maintenance_structure
        ] )
    ]
