(* Tests for the fractional-setting substrate: refinement correctness,
   integrality gap direction, fractional LCP, and the rounding
   counterexample from the paper's related-work discussion. *)

let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))
let checki = Alcotest.(check int)

let homogeneous ?(horizon = 12) () = Sim.Scenarios.homogeneous ~horizon ~count:4 ~seed:3 ()

let test_refine_shape () =
  let inst = homogeneous () in
  let refined = Fractional.Relax.refine ~granularity:5 inst in
  checki "unit count" 20 (Model.Instance.max_count refined ~typ:0);
  checkf 1e-12 "unit switching cost"
    (inst.Model.Instance.types.(0).Model.Server_type.switching_cost /. 5.)
    refined.Model.Instance.types.(0).Model.Server_type.switching_cost;
  checkf 1e-12 "unit capacity"
    (inst.Model.Instance.types.(0).Model.Server_type.cap /. 5.)
    refined.Model.Instance.types.(0).Model.Server_type.cap;
  (* Total capacity is unchanged. *)
  checkf 1e-9 "total capacity preserved"
    (Model.Instance.capacity_at inst ~time:0)
    (Model.Instance.capacity_at refined ~time:0)

let test_refine_cost_equivalence () =
  (* k units running a volume cost exactly what k/granularity whole
     servers would: compare g on matching configurations. *)
  let inst = homogeneous () in
  let k = 4 in
  let refined = Fractional.Relax.refine ~granularity:k inst in
  for whole = 1 to 4 do
    let g_orig = Model.Cost.operating inst ~time:2 [| whole |] in
    let g_refined = Model.Cost.operating refined ~time:2 [| whole * k |] in
    checkb
      (Printf.sprintf "g matches at x = %d" whole)
      true
      (Util.Float_cmp.close ~eps:1e-6 g_orig g_refined)
  done

let test_refine_granularity_one_identity () =
  let inst = homogeneous () in
  let refined = Fractional.Relax.refine ~granularity:1 inst in
  let a = (Offline.Dp.solve_optimal inst).Offline.Dp.cost in
  let b = (Offline.Dp.solve_optimal refined).Offline.Dp.cost in
  checkb "same optimum" true (Util.Float_cmp.close ~eps:1e-6 a b)

let test_fractional_opt_lower_bounds_integral () =
  let inst = homogeneous () in
  let integral = (Offline.Dp.solve_optimal inst).Offline.Dp.cost in
  List.iter
    (fun granularity ->
      let frac = Fractional.Relax.optimum ~granularity inst in
      checkb
        (Printf.sprintf "frac (k=%d) <= integral" granularity)
        true
        (frac <= integral +. 1e-6))
    [ 2; 4; 8 ]

let test_fractional_opt_monotone_in_granularity () =
  (* Finer grids can only help: k and 2k nest. *)
  let inst = homogeneous () in
  let c2 = Fractional.Relax.optimum ~granularity:2 inst in
  let c4 = Fractional.Relax.optimum ~granularity:4 inst in
  let c8 = Fractional.Relax.optimum ~granularity:8 inst in
  checkb "4 refines 2" true (c4 <= c2 +. 1e-6);
  checkb "8 refines 4" true (c8 <= c4 +. 1e-6)

let test_integrality_gap_at_least_one () =
  let inst = homogeneous () in
  checkb "gap >= 1" true (Fractional.Relax.integrality_gap ~granularity:4 inst >= 1. -. 1e-6)

let test_to_fractional () =
  let frac = Fractional.Relax.to_fractional ~granularity:4 [| [| 6 |]; [| 0 |] |] in
  checkf 1e-12 "6 units = 1.5 servers" 1.5 frac.(0).(0);
  checkf 1e-12 "zero" 0. frac.(1).(0)

let test_lcp_fractional_ratio () =
  let inst = homogeneous ~horizon:20 () in
  let granularity = 6 in
  let _, cost = Fractional.Relax.lcp ~granularity inst in
  let frac_opt = Fractional.Relax.optimum ~granularity inst in
  checkb "LCP within its 3-competitive guarantee" true (cost <= (3. *. frac_opt) +. 1e-6)

let test_lcp_requires_d1 () =
  let inst = Sim.Scenarios.cpu_gpu ~horizon:4 () in
  checkb "raises" true
    (try ignore (Fractional.Relax.lcp ~granularity:2 inst); false
     with Invalid_argument _ -> true)

let test_round_up () =
  let rounded = Fractional.Relax.round_up [| [| 1.25; 0. |]; [| 2.; 0.5 |] |] in
  Alcotest.(check (array (array int))) "ceiling" [| [| 2; 0 |]; [| 2; 1 |] |] rounded

let test_round_up_feasible () =
  (* Rounding a fractional optimum up yields a feasible integral schedule
     (capacities only grow). *)
  let inst = homogeneous () in
  let granularity = 4 in
  let refined = Fractional.Relax.refine ~granularity inst in
  let r = Offline.Dp.solve_optimal refined in
  let frac = Fractional.Relax.to_fractional ~granularity r.Offline.Dp.schedule in
  let rounded = Fractional.Relax.round_up frac in
  checkb "feasible" true (Model.Schedule.feasible inst rounded)

let test_round_randomized_feasible_and_unbiased () =
  let inst = homogeneous () in
  let granularity = 4 in
  let refined = Fractional.Relax.refine ~granularity inst in
  let frac =
    Fractional.Relax.to_fractional ~granularity
      (Offline.Dp.solve_optimal refined).Offline.Dp.schedule
  in
  let horizon = Model.Instance.horizon inst in
  let sums = Array.make horizon 0. in
  let draws = 200 in
  for k = 1 to draws do
    let rng = Util.Prng.create (500 + k) in
    let rounded = Fractional.Relax.round_randomized ~rng inst frac in
    checkb "feasible for every draw" true (Model.Schedule.feasible inst rounded);
    Array.iteri (fun t x -> sums.(t) <- sums.(t) +. float_of_int x.(0)) rounded
  done;
  (* Where the capacity clamp is inactive, E[X_t] = x_t. *)
  let cap = inst.Model.Instance.types.(0).Model.Server_type.cap in
  Array.iteri
    (fun t s ->
      let needed = Float.ceil (inst.Model.Instance.load.(t) /. cap) in
      if frac.(t).(0) > needed +. 0.2 then
        checkb
          (Printf.sprintf "unbiased at %d" t)
          true
          (Float.abs ((s /. float_of_int draws) -. frac.(t).(0)) < 0.15))
    sums

let test_round_randomized_beats_ceil_on_oscillation () =
  (* The paper's oscillation: ceil pays beta per period, the randomised
     offset pays ~eps * beta in expectation. *)
  let types = [| Model.Server_type.make ~count:3 ~switching_cost:5. ~cap:1. () |] in
  let fns = [| Convex.Fn.const 0.1 |] in
  let horizon = 20 in
  let load = Array.make horizon 0.5 in
  let inst = Model.Instance.make_static ~types ~load ~fns () in
  let frac =
    Array.init horizon (fun t -> [| (if t mod 2 = 0 then 1. else 1.1) |])
  in
  let ceil_cost = Model.Cost.schedule inst (Fractional.Relax.round_up frac) in
  let draws = 200 in
  let acc = ref 0. in
  for k = 1 to draws do
    let rng = Util.Prng.create (900 + k) in
    acc := !acc +. Model.Cost.schedule inst (Fractional.Relax.round_randomized ~rng inst frac)
  done;
  let expected = !acc /. float_of_int draws in
  checkb
    (Printf.sprintf "E[randomized] = %.2f << ceil = %.2f" expected ceil_cost)
    true
    (expected < 0.5 *. ceil_cost)

let test_round_randomized_validation () =
  let inst = Sim.Scenarios.cpu_gpu ~horizon:4 () in
  let rng = Util.Prng.create 1 in
  checkb "d = 1 only" true
    (try ignore (Fractional.Relax.round_randomized ~rng inst [| [| 1.; 1. |] |]); false
     with Invalid_argument _ -> true)

let test_oscillation_blowup () =
  let frac, rounded = Fractional.Relax.oscillation_cost ~eps:0.1 ~periods:7 ~beta:2. in
  checkf 1e-9 "fractional pays eps beta per period" 1.4 frac;
  checkf 1e-9 "rounded pays beta per period" 14. rounded;
  checkb "bad eps rejected" true
    (try ignore (Fractional.Relax.oscillation_cost ~eps:0. ~periods:1 ~beta:1.); false
     with Invalid_argument _ -> true)

let test_fractional_lower_bound_2_not_violated () =
  (* The fractional lower bound is 2 ([9]); our discrete A run on the
     refined instance must respect its own (2d+1) bound there too. *)
  let inst = homogeneous ~horizon:14 () in
  let refined = Fractional.Relax.refine ~granularity:3 inst in
  let a = Online.Alg_a.run refined in
  let opt = (Offline.Dp.solve_optimal refined).Offline.Dp.cost in
  let ratio = Model.Cost.schedule refined a.Online.Alg_a.schedule /. opt in
  checkb "within 3" true (ratio <= 3. +. 1e-6)

let test_inefficient_mix_handled () =
  (* The scenario with a dominated (inefficient) type: excluded by [5],
     must still satisfy A's guarantee here. *)
  let inst = Sim.Scenarios.inefficient_mix () in
  let r = Online.Alg_a.run inst in
  let opt = (Offline.Dp.solve_optimal inst).Offline.Dp.cost in
  let ratio = Model.Cost.schedule inst r.Online.Alg_a.schedule /. opt in
  checkb "feasible" true (Model.Schedule.feasible inst r.Online.Alg_a.schedule);
  checkb "within 2d+1" true (ratio <= 5. +. 1e-6);
  (* The inefficient type is genuinely needed at peaks. *)
  let uses_inefficient =
    Array.exists (fun x -> x.(1) > 0) ((Offline.Dp.solve_optimal inst).Offline.Dp.schedule)
  in
  checkb "peaks force the inefficient type" true uses_inefficient

let () =
  Alcotest.run "fractional"
    [ ( "refinement",
        [ Alcotest.test_case "fleet shape" `Quick test_refine_shape;
          Alcotest.test_case "cost equivalence" `Quick test_refine_cost_equivalence;
          Alcotest.test_case "granularity 1 is the identity" `Quick
            test_refine_granularity_one_identity
        ] );
      ( "optimum",
        [ Alcotest.test_case "lower-bounds the integral optimum" `Quick
            test_fractional_opt_lower_bounds_integral;
          Alcotest.test_case "monotone in granularity" `Quick
            test_fractional_opt_monotone_in_granularity;
          Alcotest.test_case "integrality gap >= 1" `Quick test_integrality_gap_at_least_one;
          Alcotest.test_case "to_fractional" `Quick test_to_fractional
        ] );
      ( "lcp",
        [ Alcotest.test_case "3-competitive empirically" `Quick test_lcp_fractional_ratio;
          Alcotest.test_case "requires d = 1" `Quick test_lcp_requires_d1
        ] );
      ( "rounding",
        [ Alcotest.test_case "ceiling" `Quick test_round_up;
          Alcotest.test_case "rounded optimum is feasible" `Quick test_round_up_feasible;
          Alcotest.test_case "randomized rounding feasible and unbiased" `Quick
            test_round_randomized_feasible_and_unbiased;
          Alcotest.test_case "randomized rounding beats ceil on oscillation" `Quick
            test_round_randomized_beats_ceil_on_oscillation;
          Alcotest.test_case "randomized rounding validation" `Quick
            test_round_randomized_validation;
          Alcotest.test_case "oscillation blow-up" `Quick test_oscillation_blowup
        ] );
      ( "related",
        [ Alcotest.test_case "A on the refined instance" `Quick
            test_fractional_lower_bound_2_not_violated;
          Alcotest.test_case "inefficient types handled" `Quick test_inefficient_mix_handled
        ] )
    ]
