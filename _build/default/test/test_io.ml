(* Tests for the CSV substrate and the workload/schedule persistence. *)

let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))

let with_temp f =
  let path = Filename.temp_file "rightsizing" ".csv" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* --- Csv --- *)

let test_csv_roundtrip () =
  with_temp (fun path ->
      let header = [ "a"; "b"; "c" ] in
      let rows = [ [ "1"; "2"; "3" ]; [ "x"; "y"; "z" ] ] in
      Util.Csv.write ~path ~header rows;
      Alcotest.(check (list (list string))) "roundtrip" (header :: rows) (Util.Csv.read ~path);
      Alcotest.(check (list (list string))) "body" rows (Util.Csv.read_body ~path ~header))

let test_csv_quoting () =
  with_temp (fun path ->
      let rows = [ [ "has,comma"; "has\"quote"; "plain" ] ] in
      Util.Csv.write ~path ~header:[ "x"; "y"; "z" ] rows;
      Alcotest.(check (list (list string)))
        "quoted cells survive" rows
        (Util.Csv.read_body ~path ~header:[ "x"; "y"; "z" ]))

let test_csv_header_mismatch () =
  with_temp (fun path ->
      Util.Csv.write ~path ~header:[ "a" ] [ [ "1" ] ];
      checkb "raises" true
        (try ignore (Util.Csv.read_body ~path ~header:[ "b" ]); false
         with Invalid_argument _ -> true))

(* --- Trace --- *)

let test_workload_roundtrip () =
  with_temp (fun path ->
      let load = [| 0.; 1.5; 2.25; 100.125 |] in
      Sim.Trace.save_workload ~path load;
      let back = Sim.Trace.load_workload ~path in
      Alcotest.(check int) "length" 4 (Array.length back);
      Array.iteri (fun i l -> checkf 1e-9 "value" l back.(i)) load)

let test_workload_rejects_garbage () =
  with_temp (fun path ->
      Util.Csv.write ~path ~header:[ "slot"; "load" ] [ [ "0"; "not-a-number" ] ];
      checkb "raises" true
        (try ignore (Sim.Trace.load_workload ~path); false
         with Invalid_argument _ -> true))

let test_schedule_roundtrip () =
  with_temp (fun path ->
      let inst = Sim.Scenarios.cpu_gpu ~horizon:10 () in
      let { Offline.Dp.schedule; _ } = Offline.Dp.solve_optimal inst in
      Sim.Trace.save_schedule ~path inst schedule;
      let back = Sim.Trace.load_schedule ~path ~d:2 in
      Alcotest.(check int) "horizon" 10 (Array.length back);
      Array.iteri
        (fun t x -> checkb "row matches" true (Model.Config.equal x schedule.(t)))
        back)

let test_schedule_cost_columns () =
  with_temp (fun path ->
      let inst = Sim.Scenarios.homogeneous ~horizon:6 () in
      let { Offline.Dp.schedule; cost } = Offline.Dp.solve_optimal inst in
      Sim.Trace.save_schedule ~path inst schedule;
      (* Sum of the operating and switching columns equals the total. *)
      let body =
        Util.Csv.read_body ~path
          ~header:[ "slot"; "load"; "node"; "operating"; "switching" ]
      in
      let total =
        List.fold_left
          (fun acc row ->
            match row with
            | [ _; _; _; op; sw ] -> acc +. float_of_string op +. float_of_string sw
            | _ -> Alcotest.fail "malformed row")
          0. body
      in
      checkb "columns sum to the schedule cost" true (Util.Float_cmp.close ~eps:1e-6 total cost))

let () =
  Alcotest.run "io"
    [ ( "csv",
        [ Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "header mismatch" `Quick test_csv_header_mismatch
        ] );
      ( "trace",
        [ Alcotest.test_case "workload roundtrip" `Quick test_workload_roundtrip;
          Alcotest.test_case "workload rejects garbage" `Quick test_workload_rejects_garbage;
          Alcotest.test_case "schedule roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "schedule cost columns" `Quick test_schedule_cost_columns
        ] )
    ]
