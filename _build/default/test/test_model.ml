(* Unit tests for the model layer: server types, instances, configs,
   schedules, and the operating/switching/total cost functions. *)

let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))
let checki = Alcotest.(check int)

let st = Model.Server_type.make

let two_type_instance ?avail ?(horizon = 4) ?(load = None) () =
  let types =
    [| st ~name:"small" ~count:3 ~switching_cost:2. ~cap:1. ();
       st ~name:"big" ~count:2 ~switching_cost:5. ~cap:3. () |]
  in
  let fns =
    [| Convex.Fn.power ~idle:0.5 ~coef:1. ~expo:2.;
       Convex.Fn.power ~idle:1. ~coef:0.5 ~expo:2. |]
  in
  let load = match load with Some l -> l | None -> Array.make horizon 2. in
  Model.Instance.make_static ?avail ~types ~load ~fns ()

(* --- Server_type --- *)

let test_server_type_validation () =
  checkb "negative count" true
    (try ignore (st ~count:(-1) ~switching_cost:1. ~cap:1. ()); false
     with Invalid_argument _ -> true);
  checkb "negative beta" true
    (try ignore (st ~count:1 ~switching_cost:(-1.) ~cap:1. ()); false
     with Invalid_argument _ -> true);
  checkb "zero cap" true
    (try ignore (st ~count:1 ~switching_cost:1. ~cap:0. ()); false
     with Invalid_argument _ -> true)

let test_server_type_with_count () =
  let t = st ~count:3 ~switching_cost:1. ~cap:1. () in
  checki "updated" 7 (Model.Server_type.with_count t 7).Model.Server_type.count;
  checkb "negative rejected" true
    (try ignore (Model.Server_type.with_count t (-1)); false
     with Invalid_argument _ -> true)

(* --- Instance --- *)

let test_instance_basics () =
  let inst = two_type_instance () in
  checki "horizon" 4 (Model.Instance.horizon inst);
  checki "types" 2 (Model.Instance.num_types inst);
  checkb "time independent" true inst.Model.Instance.time_independent;
  checkb "not size varying" false inst.Model.Instance.size_varying;
  checkf 1e-12 "idle cost type 0" 0.5 (Model.Instance.idle_cost inst ~time:2 ~typ:0);
  checkf 1e-12 "capacity" 9. (Model.Instance.capacity_at inst ~time:0);
  checkb "feasible" true (Model.Instance.feasible_load inst);
  Alcotest.(check (array int)) "counts" [| 3; 2 |] (Model.Instance.counts inst)

let test_instance_prefix () =
  let inst = two_type_instance ~horizon:5 () in
  let p = Model.Instance.prefix inst 2 in
  checki "prefix horizon" 2 (Model.Instance.horizon p);
  checkb "bad prefix" true
    (try ignore (Model.Instance.prefix inst 0); false with Invalid_argument _ -> true);
  checkb "too long" true
    (try ignore (Model.Instance.prefix inst 6); false with Invalid_argument _ -> true)

let test_instance_window () =
  let load = [| 1.; 2.; 3.; 4.; 5. |] in
  let inst = two_type_instance ~horizon:5 ~load:(Some load) () in
  let w = Model.Instance.window inst ~start:2 ~len:2 in
  checki "window horizon" 2 (Model.Instance.horizon w);
  checkf 0. "window load" 3. w.Model.Instance.load.(0);
  checkf 0. "window load shifts" 4. w.Model.Instance.load.(1)

let test_instance_negative_load_rejected () =
  checkb "rejected" true
    (try ignore (two_type_instance ~load:(Some [| 1.; -1.; 0.; 0. |]) ()); false
     with Invalid_argument _ -> true)

let test_instance_avail () =
  let avail ~time ~typ = if typ = 0 && time = 1 then 1 else if typ = 0 then 3 else 2 in
  let inst = two_type_instance ~avail () in
  checkb "size varying" true inst.Model.Instance.size_varying;
  checki "reduced slot" 1 (inst.Model.Instance.avail ~time:1 ~typ:0);
  checkf 1e-12 "capacity honours avail" 7. (Model.Instance.capacity_at inst ~time:1)

let test_instance_avail_above_count_rejected () =
  let avail ~time:_ ~typ:_ = 10 in
  checkb "rejected" true
    (try ignore (two_type_instance ~avail ()); false with Invalid_argument _ -> true)

let test_instance_infeasible_load_detected () =
  let inst = two_type_instance ~load:(Some [| 2.; 100.; 2.; 2. |]) () in
  checkb "detected" false (Model.Instance.feasible_load inst)

let test_scale_slot () =
  let inst = two_type_instance () in
  let fns = Model.Instance.scale_slot inst ~time:0 ~parts:4 in
  checkf 1e-12 "idle quartered" 0.125 (Convex.Fn.eval fns.(0) 0.)

(* --- Config --- *)

let test_config_switching_cost () =
  let types = (two_type_instance ()).Model.Instance.types in
  checkf 1e-12 "pure power-up" (2. *. 2.)
    (Model.Config.switching_cost types ~from_:[| 0; 0 |] ~to_:[| 2; 0 |]);
  checkf 1e-12 "power-down free"
    0. (Model.Config.switching_cost types ~from_:[| 2; 1 |] ~to_:[| 0; 0 |]);
  checkf 1e-12 "mixed" 5.
    (Model.Config.switching_cost types ~from_:[| 2; 0 |] ~to_:[| 1; 1 |])

let test_config_capacity () =
  let types = (two_type_instance ()).Model.Instance.types in
  checkf 1e-12 "capacity" 5. (Model.Config.capacity types [| 2; 1 |])

let test_config_order_helpers () =
  checkb "dominates" true (Model.Config.dominates [| 2; 1 |] [| 1; 1 |]);
  checkb "not dominates" false (Model.Config.dominates [| 2; 0 |] [| 1; 1 |]);
  checkb "within" true (Model.Config.within [| 2; 1 |] [| 3; 2 |]);
  checkb "not within" false (Model.Config.within [| 4; 1 |] [| 3; 2 |]);
  checkb "lexicographic" true (Model.Config.compare [| 0; 9 |] [| 1; 0 |] < 0);
  Alcotest.(check string) "to_string" "(2,1)" (Model.Config.to_string [| 2; 1 |])

(* --- Schedule --- *)

let test_schedule_feasibility () =
  let inst = two_type_instance () in
  let ok = Model.Schedule.of_lists [ [ 2; 0 ]; [ 2; 0 ]; [ 0; 1 ]; [ 2; 0 ] ] in
  checkb "feasible" true (Model.Schedule.feasible inst ok);
  let short = Model.Schedule.of_lists [ [ 1; 0 ]; [ 2; 0 ]; [ 0; 1 ]; [ 2; 0 ] ] in
  (* Slot 0 has capacity 1 < load 2. *)
  checkb "under capacity" false (Model.Schedule.feasible inst short);
  (match Model.Schedule.check inst short with
  | [ Model.Schedule.Under_capacity { time = 0; _ } ] -> ()
  | _ -> Alcotest.fail "expected one capacity violation at slot 0");
  let over = Model.Schedule.of_lists [ [ 4; 0 ]; [ 2; 0 ]; [ 0; 1 ]; [ 2; 0 ] ] in
  (match Model.Schedule.check inst over with
  | [ Model.Schedule.Bad_count { time = 0; typ = 0; value = 4; avail = 3 } ] -> ()
  | _ -> Alcotest.fail "expected one count violation")

let test_schedule_column () =
  let s = Model.Schedule.of_lists [ [ 1; 0 ]; [ 2; 1 ]; [ 0; 2 ] ] in
  Alcotest.(check (array int)) "column 0" [| 1; 2; 0 |] (Model.Schedule.column s ~typ:0);
  Alcotest.(check (array int)) "column 1" [| 0; 1; 2 |] (Model.Schedule.column s ~typ:1)

let test_schedule_make_copies () =
  let row = [| 1; 0 |] in
  let s = Model.Schedule.make [| row; row |] in
  row.(0) <- 99;
  checki "deep copy" 1 s.(0).(0)

(* --- Cost --- *)

let test_operating_zero_load () =
  let inst = two_type_instance ~load:(Some [| 0.; 0.; 0.; 0. |]) () in
  (* Only idle costs: 2 * 0.5 + 1 * 1.0 = 2. *)
  checkf 1e-9 "idle only" 2. (Model.Cost.operating inst ~time:0 [| 2; 1 |]);
  checkf 1e-9 "nothing active" 0. (Model.Cost.operating inst ~time:0 [| 0; 0 |])

let test_operating_infeasible () =
  let inst = two_type_instance ~load:(Some [| 5.; 2.; 2.; 2. |]) () in
  checkb "too small" true (Model.Cost.operating inst ~time:0 [| 2; 0 |] = infinity);
  checkb "zero config with load" true (Model.Cost.operating inst ~time:0 [| 0; 0 |] = infinity)

let test_operating_homogeneous_closed_form () =
  (* d = 1: g(x) = x f(lambda / x). *)
  let types = [| st ~count:5 ~switching_cost:1. ~cap:2. () |] in
  let fns = [| Convex.Fn.power ~idle:0.3 ~coef:1. ~expo:2. |] in
  let inst = Model.Instance.make_static ~types ~load:[| 3. |] ~fns () in
  let expected x =
    let xf = float_of_int x in
    xf *. (0.3 +. ((3. /. xf) ** 2.))
  in
  checkf 1e-9 "x=2" (expected 2) (Model.Cost.operating inst ~time:0 [| 2 |]);
  checkf 1e-9 "x=3" (expected 3) (Model.Cost.operating inst ~time:0 [| 3 |])

let test_operating_matches_bruteforce_grid () =
  (* d = 2 dispatch vs a fine grid search over the split. *)
  let inst = two_type_instance ~load:(Some [| 2.5; 2.; 2.; 2. |]) () in
  let x = [| 2; 1 |] in
  let g = Model.Cost.operating inst ~time:0 x in
  let lambda = 2.5 in
  let f0 = inst.Model.Instance.cost ~time:0 ~typ:0 in
  let f1 = inst.Model.Instance.cost ~time:0 ~typ:1 in
  let best = ref infinity in
  let n = 4000 in
  for i = 0 to n do
    let z0 = float_of_int i /. float_of_int n in
    let z1 = 1. -. z0 in
    if lambda *. z0 <= 2. *. 1. +. 1e-9 && lambda *. z1 <= 1. *. 3. +. 1e-9 then begin
      let c =
        (2. *. Convex.Fn.eval f0 (lambda *. z0 /. 2.))
        +. (1. *. Convex.Fn.eval f1 (lambda *. z1 /. 1.))
      in
      if c < !best then best := c
    end
  done;
  checkb "dispatch optimal vs grid" true (Float.abs (g -. !best) < 1e-4)

let test_operating_load_independent_fast_path () =
  let types =
    [| st ~count:2 ~switching_cost:1. ~cap:1. (); st ~count:2 ~switching_cost:1. ~cap:1. () |]
  in
  let fns = [| Convex.Fn.const 0.7; Convex.Fn.const 1.1 |] in
  let inst = Model.Instance.make_static ~types ~load:[| 2. |] ~fns () in
  checkf 1e-9 "sum of constants" ((2. *. 0.7) +. (1. *. 1.1))
    (Model.Cost.operating inst ~time:0 [| 2; 1 |])

let test_operating_split_sums_to_one () =
  let inst = two_type_instance ~load:(Some [| 2.5; 2.; 2.; 2. |]) () in
  match Model.Cost.operating_split inst ~time:0 [| 2; 1 |] with
  | None -> Alcotest.fail "feasible"
  | Some (split, _) ->
      let s = Array.fold_left ( +. ) 0. split in
      checkb "sums to 1" true (Float.abs (s -. 1.) < 1e-6)

let test_load_dependent_nonnegative () =
  let inst = two_type_instance ~load:(Some [| 2.5; 2.; 2.; 2. |]) () in
  for typ = 0 to 1 do
    let l = Model.Cost.load_dependent inst ~time:0 [| 2; 1 |] ~typ in
    checkb "non-negative" true (l >= 0.)
  done;
  checkf 0. "inactive type contributes zero" 0.
    (Model.Cost.load_dependent inst ~time:0 [| 3; 0 |] ~typ:1)

let test_schedule_cost_decomposition () =
  let inst = two_type_instance () in
  let s = Model.Schedule.of_lists [ [ 2; 0 ]; [ 0; 1 ]; [ 0; 1 ]; [ 2; 0 ] ] in
  let total = Model.Cost.schedule inst s in
  let op = Model.Cost.schedule_operating inst s in
  let sw = Model.Cost.schedule_switching inst s in
  checkb "decomposition" true (Float.abs (total -. (op +. sw)) < 1e-9);
  (* Switching: 2 small up at t0 (4), 1 big at t1 (5), 2 small at t3 (4). *)
  checkf 1e-9 "switching" 13. sw

let test_schedule_cost_initial_powerup_counted () =
  let types = [| st ~count:1 ~switching_cost:7. ~cap:10. () |] in
  let fns = [| Convex.Fn.const 1. |] in
  let inst = Model.Instance.make_static ~types ~load:[| 1. |] ~fns () in
  checkf 1e-9 "beta + one slot idle" 8.
    (Model.Cost.schedule inst (Model.Schedule.of_lists [ [ 1 ] ]))

let test_cost_cache_consistent () =
  let inst = two_type_instance ~load:(Some [| 2.5; 1.; 0.; 2. |]) () in
  let cache = Model.Cost.make_cache inst in
  for time = 0 to 3 do
    let x = [| 2; 1 |] in
    checkf 1e-12 "cache = direct"
      (Model.Cost.operating inst ~time x)
      (Model.Cost.cached_operating cache ~time x)
  done;
  (* Second read hits the memo and must agree. *)
  checkf 1e-12 "memo stable"
    (Model.Cost.cached_operating cache ~time:0 [| 2; 1 |])
    (Model.Cost.cached_operating cache ~time:0 [| 2; 1 |])

let test_operating_volume () =
  let inst = two_type_instance ~load:(Some [| 2.5; 2.; 2.; 2. |]) () in
  let x = [| 2; 1 |] in
  checkf 1e-9 "volume = slot load agrees" (Model.Cost.operating inst ~time:0 x)
    (Model.Cost.operating_volume inst ~time:0 ~volume:2.5 x);
  checkf 1e-9 "zero volume = idle sum" 2.
    (Model.Cost.operating_volume inst ~time:0 ~volume:0. x);
  checkb "beyond capacity infeasible" true
    (Model.Cost.operating_volume inst ~time:0 ~volume:100. x = infinity);
  checkb "negative volume raises" true
    (try ignore (Model.Cost.operating_volume inst ~time:0 ~volume:(-1.) x); false
     with Invalid_argument _ -> true)

let test_window_validation () =
  let inst = two_type_instance ~horizon:5 () in
  List.iter
    (fun (start, len) ->
      checkb
        (Printf.sprintf "window %d %d rejected" start len)
        true
        (try ignore (Model.Instance.window inst ~start ~len); false
         with Invalid_argument _ -> true))
    [ (-1, 2); (0, 0); (4, 2); (0, 6) ]

let test_single_slot_instance () =
  let inst = two_type_instance ~horizon:1 ~load:(Some [| 2. |]) () in
  let r = Offline.Dp.solve_optimal inst in
  checkb "solves" true (Float.is_finite r.Offline.Dp.cost);
  let a = Online.Alg_a.run inst in
  checkb "online feasible" true (Model.Schedule.feasible inst a.Online.Alg_a.schedule)

let test_transition_cost_two_sided () =
  let types =
    [| st ~count:3 ~switching_cost:2. ~switch_down:0.5 ~cap:1. ();
       st ~count:2 ~switching_cost:5. ~cap:3. () |]
  in
  (* Up 2 of type 0 (2*2), down 1 of type 1 (free: no down cost). *)
  checkf 1e-12 "mixed" 4.
    (Model.Config.transition_cost types ~from_:[| 0; 1 |] ~to_:[| 2; 0 |]);
  (* Down 2 of type 0 at 0.5 each. *)
  checkf 1e-12 "downs" 1.
    (Model.Config.transition_cost types ~from_:[| 2; 0 |] ~to_:[| 0; 0 |])

let test_fold_switching_identity () =
  (* The paper's folding: every schedule costs the same under the folded
     instance (power-downs inactive at the boundaries). *)
  let rng = Util.Prng.create 61 in
  for _ = 1 to 20 do
    let types =
      [| st ~count:2 ~switching_cost:(Util.Prng.float rng 3.)
           ~switch_down:(Util.Prng.float rng 3.) ~cap:2. ();
         st ~count:2 ~switching_cost:(Util.Prng.float rng 3.)
           ~switch_down:(Util.Prng.float rng 3.) ~cap:3. () |]
    in
    let fns =
      [| Convex.Fn.power ~idle:0.3 ~coef:0.5 ~expo:2.; Convex.Fn.const 0.7 |]
    in
    let horizon = 5 in
    let load = Array.init horizon (fun _ -> Util.Prng.float rng 4.) in
    let inst = Model.Instance.make_static ~types ~load ~fns () in
    let folded = Model.Instance.fold_switching inst in
    checkb "folded has no down costs" false (Model.Instance.has_down_costs folded);
    (* A random feasible schedule. *)
    let schedule =
      Array.init horizon (fun _ -> [| Util.Prng.int rng 3; 1 + Util.Prng.int rng 2 |])
    in
    checkb "identity" true
      (Util.Float_cmp.close ~eps:1e-9
         (Model.Cost.schedule inst schedule)
         (Model.Cost.schedule folded schedule))
  done

let test_down_costs_solvers_consistent () =
  (* Solving an instance with down costs: the returned cost (computed on
     the folded instance) equals the two-sided cost of the schedule. *)
  let types =
    [| st ~count:3 ~switching_cost:1. ~switch_down:2. ~cap:1. ();
       st ~count:2 ~switching_cost:2. ~switch_down:1. ~cap:3. () |]
  in
  let fns =
    [| Convex.Fn.power ~idle:0.5 ~coef:1. ~expo:2.;
       Convex.Fn.power ~idle:1. ~coef:0.5 ~expo:2. |]
  in
  let load = [| 2.; 4.; 1.; 0.; 3.; 2. |] in
  let inst = Model.Instance.make_static ~types ~load ~fns () in
  let r = Offline.Dp.solve_optimal inst in
  checkb "reported = two-sided cost" true
    (Util.Float_cmp.close ~eps:1e-6 r.Offline.Dp.cost
       (Model.Cost.schedule inst r.Offline.Dp.schedule));
  (* Online algorithm A also works through the folded prefix engine. *)
  let a = Online.Alg_a.run inst in
  checkb "A feasible" true (Model.Schedule.feasible inst a.Online.Alg_a.schedule);
  checkb "A within 2d+1 (two-sided accounting)" true
    (Model.Cost.schedule inst a.Online.Alg_a.schedule <= (5. *. r.Offline.Dp.cost) +. 1e-6)

let test_operating_by_type_sums () =
  let inst = two_type_instance ~load:(Some [| 2.5; 2.; 2.; 2. |]) () in
  let x = [| 2; 1 |] in
  (match Model.Cost.operating_by_type inst ~time:0 ~volume:2.5 x with
  | None -> Alcotest.fail "feasible"
  | Some parts ->
      let sum = Array.fold_left ( +. ) 0. parts in
      checkb "parts sum to g" true
        (Util.Float_cmp.close ~eps:1e-6 sum
           (Model.Cost.operating_volume inst ~time:0 ~volume:2.5 x));
      Array.iter (fun e -> checkb "non-negative" true (e >= 0.)) parts);
  checkb "infeasible is None" true
    (Model.Cost.operating_by_type inst ~time:0 ~volume:100. x = None)

let test_jensen_lemma2 () =
  (* Lemma 2: even spreading beats any uneven split across x servers. *)
  let f = Convex.Fn.power ~idle:0.2 ~coef:1. ~expo:2. in
  let lambda_z = 1.7 in
  let x = 3 in
  let even = float_of_int x *. Convex.Fn.eval f (lambda_z /. float_of_int x) in
  let uneven a b c =
    Convex.Fn.eval f (lambda_z *. a) +. Convex.Fn.eval f (lambda_z *. b)
    +. Convex.Fn.eval f (lambda_z *. c)
  in
  checkb "even <= (0.5, 0.3, 0.2)" true (even <= uneven 0.5 0.3 0.2 +. 1e-9);
  checkb "even <= (1, 0, 0)" true (even <= uneven 1. 0. 0. +. 1e-9);
  checkb "even = even split" true
    (Float.abs (even -. uneven (1. /. 3.) (1. /. 3.) (1. /. 3.)) < 1e-9)

let () =
  Alcotest.run "model"
    [ ( "server_type",
        [ Alcotest.test_case "validation" `Quick test_server_type_validation;
          Alcotest.test_case "with_count" `Quick test_server_type_with_count
        ] );
      ( "instance",
        [ Alcotest.test_case "basics" `Quick test_instance_basics;
          Alcotest.test_case "prefix" `Quick test_instance_prefix;
          Alcotest.test_case "window" `Quick test_instance_window;
          Alcotest.test_case "negative load rejected" `Quick test_instance_negative_load_rejected;
          Alcotest.test_case "availability" `Quick test_instance_avail;
          Alcotest.test_case "availability above count rejected" `Quick
            test_instance_avail_above_count_rejected;
          Alcotest.test_case "infeasible load detected" `Quick
            test_instance_infeasible_load_detected;
          Alcotest.test_case "scale_slot" `Quick test_scale_slot
        ] );
      ( "config",
        [ Alcotest.test_case "switching cost" `Quick test_config_switching_cost;
          Alcotest.test_case "capacity" `Quick test_config_capacity;
          Alcotest.test_case "order helpers" `Quick test_config_order_helpers
        ] );
      ( "schedule",
        [ Alcotest.test_case "feasibility" `Quick test_schedule_feasibility;
          Alcotest.test_case "column extraction" `Quick test_schedule_column;
          Alcotest.test_case "make deep-copies" `Quick test_schedule_make_copies
        ] );
      ( "cost",
        [ Alcotest.test_case "zero load" `Quick test_operating_zero_load;
          Alcotest.test_case "infeasible configs" `Quick test_operating_infeasible;
          Alcotest.test_case "homogeneous closed form" `Quick
            test_operating_homogeneous_closed_form;
          Alcotest.test_case "dispatch vs grid search" `Quick
            test_operating_matches_bruteforce_grid;
          Alcotest.test_case "load-independent fast path" `Quick
            test_operating_load_independent_fast_path;
          Alcotest.test_case "split sums to one" `Quick test_operating_split_sums_to_one;
          Alcotest.test_case "load-dependent part non-negative" `Quick
            test_load_dependent_nonnegative;
          Alcotest.test_case "cost decomposition" `Quick test_schedule_cost_decomposition;
          Alcotest.test_case "initial power-up counted" `Quick
            test_schedule_cost_initial_powerup_counted;
          Alcotest.test_case "cache consistency" `Quick test_cost_cache_consistent;
          Alcotest.test_case "two-sided transition cost" `Quick
            test_transition_cost_two_sided;
          Alcotest.test_case "folding identity (paper remark)" `Quick
            test_fold_switching_identity;
          Alcotest.test_case "solvers handle down costs" `Quick
            test_down_costs_solvers_consistent;
          Alcotest.test_case "operating_volume" `Quick test_operating_volume;
          Alcotest.test_case "operating_by_type sums" `Quick test_operating_by_type_sums;
          Alcotest.test_case "window validation" `Quick test_window_validation;
          Alcotest.test_case "single-slot instance" `Quick test_single_slot_instance;
          Alcotest.test_case "Lemma 2 (Jensen)" `Quick test_jensen_lemma2
        ] )
    ]
