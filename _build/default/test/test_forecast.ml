(* Tests for the forecasting substrate and the predictive
   receding-horizon planner. *)

let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))
let checki = Alcotest.(check int)

let feed p xs = Array.iter (Forecast.Predictor.observe p) xs

(* --- predictors --- *)

let test_before_any_observation () =
  List.iter
    (fun p ->
      Alcotest.(check (array (float 0.))) "zeros" [| 0.; 0. |]
        (Forecast.Predictor.forecast p ~steps:2))
    [ Forecast.Predictor.naive_last ();
      Forecast.Predictor.seasonal_naive ~period:3;
      Forecast.Predictor.ewma ~alpha:0.5;
      Forecast.Predictor.holt ~alpha:0.5 ~beta:0.2;
      Forecast.Predictor.holt_winters ~alpha:0.5 ~beta:0.2 ~gamma:0.2 ~period:4 ]

let test_naive_last () =
  let p = Forecast.Predictor.naive_last () in
  feed p [| 1.; 5.; 3. |];
  Alcotest.(check (array (float 0.))) "flat last" [| 3.; 3.; 3. |]
    (Forecast.Predictor.forecast p ~steps:3);
  checki "count" 3 (Forecast.Predictor.observed p)

let test_seasonal_naive_exact_on_periodic () =
  let period = 4 in
  let signal = Array.init 16 (fun t -> float_of_int (t mod period) +. 1.) in
  let p = Forecast.Predictor.seasonal_naive ~period in
  feed p signal;
  (* Next slots are phases 0, 1, 2, ... again. *)
  Alcotest.(check (array (float 1e-12))) "periodic continuation" [| 1.; 2.; 3.; 4.; 1. |]
    (Forecast.Predictor.forecast p ~steps:5)

let test_seasonal_naive_fallback () =
  let p = Forecast.Predictor.seasonal_naive ~period:5 in
  feed p [| 7. |];
  (* Phases 1..4 unseen: fall back to the last observation. *)
  Alcotest.(check (array (float 0.))) "fallback" [| 7.; 7. |]
    (Forecast.Predictor.forecast p ~steps:2)

let test_ewma_constant_convergence () =
  let p = Forecast.Predictor.ewma ~alpha:0.3 in
  feed p (Array.make 200 4.2);
  checkb "converged" true
    (Float.abs ((Forecast.Predictor.forecast p ~steps:1).(0) -. 4.2) < 1e-9)

let test_ewma_alpha_one_is_naive () =
  let p = Forecast.Predictor.ewma ~alpha:1. in
  feed p [| 1.; 9.; 2. |];
  checkf 1e-12 "last value" 2. (Forecast.Predictor.forecast p ~steps:1).(0)

let test_holt_tracks_linear_trend () =
  (* On an exactly linear series Holt's update is exact from step two. *)
  let p = Forecast.Predictor.holt ~alpha:0.8 ~beta:0.5 in
  feed p (Array.init 30 (fun t -> 2. +. (3. *. float_of_int t)));
  let f = Forecast.Predictor.forecast p ~steps:3 in
  (* Next values: 2 + 3*30, 2 + 3*31, ... *)
  checkb "extrapolates" true (Float.abs (f.(0) -. 92.) < 1e-6);
  checkb "extrapolates further" true (Float.abs (f.(2) -. 98.) < 1e-6)

let test_holt_winters_periodic () =
  (* Trendless periodic signal: after warm-up the forecasts track the
     cycle closely. *)
  let period = 6 in
  let signal t = 5. +. (2. *. sin (2. *. Float.pi *. float_of_int t /. float_of_int period)) in
  let p = Forecast.Predictor.holt_winters ~alpha:0.3 ~beta:0.05 ~gamma:0.4 ~period in
  for t = 0 to 119 do
    Forecast.Predictor.observe p (signal t)
  done;
  let f = Forecast.Predictor.forecast p ~steps:period in
  let max_err = ref 0. in
  for k = 0 to period - 1 do
    max_err := Float.max !max_err (Float.abs (f.(k) -. signal (120 + k)))
  done;
  checkb (Printf.sprintf "cycle tracked (max err %.3f)" !max_err) true (!max_err < 0.4)

let test_forecast_nonnegative () =
  (* A falling trend would extrapolate below zero; forecasts clamp. *)
  let p = Forecast.Predictor.holt ~alpha:0.9 ~beta:0.9 in
  feed p [| 10.; 6.; 2. |];
  Array.iter
    (fun v -> checkb "clamped at zero" true (v >= 0.))
    (Forecast.Predictor.forecast p ~steps:6)

let test_validation () =
  checkb "bad alpha" true
    (try ignore (Forecast.Predictor.ewma ~alpha:0.); false with Invalid_argument _ -> true);
  checkb "bad period" true
    (try ignore (Forecast.Predictor.seasonal_naive ~period:0); false
     with Invalid_argument _ -> true);
  let p = Forecast.Predictor.naive_last () in
  checkb "negative observation" true
    (try Forecast.Predictor.observe p (-1.); false with Invalid_argument _ -> true);
  checkb "bad steps" true
    (try ignore (Forecast.Predictor.forecast p ~steps:0); false
     with Invalid_argument _ -> true)

(* --- backtest --- *)

let test_backtest_perfect_on_constant () =
  let series = Array.make 40 3. in
  let e = Forecast.Predictor.backtest ~make:Forecast.Predictor.naive_last series in
  checkf 1e-9 "mae 0" 0. e.Forecast.Predictor.mae;
  checkf 1e-9 "rmse 0" 0. e.Forecast.Predictor.rmse;
  checkb "samples counted" true (e.Forecast.Predictor.samples > 0)

let test_backtest_seasonal_beats_naive_on_periodic () =
  let series = Array.init 60 (fun t -> float_of_int (t mod 6)) in
  let naive = Forecast.Predictor.backtest ~make:Forecast.Predictor.naive_last series in
  let seasonal =
    Forecast.Predictor.backtest
      ~make:(fun () -> Forecast.Predictor.seasonal_naive ~period:6)
      series
  in
  checkb "seasonal wins" true
    (seasonal.Forecast.Predictor.mae < naive.Forecast.Predictor.mae);
  checkf 1e-9 "seasonal is exact" 0. seasonal.Forecast.Predictor.mae

let test_backtest_multi_step () =
  let series = Array.init 50 (fun t -> float_of_int t) in
  let e =
    Forecast.Predictor.backtest
      ~make:(fun () -> Forecast.Predictor.holt ~alpha:0.9 ~beta:0.9)
      ~steps:3 series
  in
  (* Holt is exact on linear series even three steps out. *)
  checkb "exact on linear" true (e.Forecast.Predictor.mae < 1e-6)

let test_backtest_mape_all_zero () =
  let e =
    Forecast.Predictor.backtest ~make:Forecast.Predictor.naive_last (Array.make 20 0.)
  in
  checkb "mape undefined" true (Float.is_nan e.Forecast.Predictor.mape)

(* --- predictive planning --- *)

let test_predictive_feasible_and_bounded () =
  let inst = Sim.Scenarios.cpu_gpu ~horizon:24 () in
  let opt = (Offline.Dp.solve_optimal inst).Offline.Dp.cost in
  List.iter
    (fun make ->
      let s = Forecast.Predictive.plan ~make ~window:4 inst in
      checkb "feasible" true (Model.Schedule.feasible inst s);
      checkb "not absurd" true (Model.Cost.schedule inst s <= 3. *. opt))
    [ (fun () -> Forecast.Predictor.naive_last ());
      (fun () -> Forecast.Predictor.seasonal_naive ~period:24);
      (fun () -> Forecast.Predictor.ewma ~alpha:0.5) ]

let test_predictive_perfect_forecast_matches_oracle () =
  (* On an exactly periodic load, the seasonal predictor's window equals
     the true future, so predictive = oracle receding horizon. *)
  let types =
    [| Model.Server_type.make ~name:"n" ~count:6 ~switching_cost:3. ~cap:1. () |]
  in
  let fns = [| Convex.Fn.power ~idle:0.5 ~coef:0.8 ~expo:2. |] in
  let load = Array.init 36 (fun t -> float_of_int (1 + (t mod 4))) in
  let inst = Model.Instance.make_static ~types ~load ~fns () in
  let oracle = Online.Baselines.receding_horizon ~window:4 inst in
  let predictive =
    Forecast.Predictive.plan
      ~make:(fun () -> Forecast.Predictor.seasonal_naive ~period:4)
      ~window:4 inst
  in
  (* After one full period of warm-up the decisions coincide. *)
  let agree = ref 0 in
  for t = 4 to 35 do
    if Model.Config.equal oracle.(t) predictive.(t) then incr agree
  done;
  checkb
    (Printf.sprintf "decisions mostly agree (%d/32)" !agree)
    true (!agree >= 28)

let test_predictive_window_one () =
  let inst = Sim.Scenarios.homogeneous ~horizon:12 () in
  let s =
    Forecast.Predictive.plan ~make:Forecast.Predictor.naive_last ~window:1 inst
  in
  checkb "feasible" true (Model.Schedule.feasible inst s)

let test_anticipatory_window_zero_is_alg_a () =
  let inst = Sim.Scenarios.cpu_gpu ~horizon:16 () in
  let plain = (Online.Alg_a.run inst).Online.Alg_a.schedule in
  let anticipatory =
    Forecast.Predictive.anticipatory_a ~make:Forecast.Predictor.naive_last ~window:0 inst
  in
  checkb "identical to algorithm A" true (anticipatory = plain)

let test_anticipatory_feasible_and_helpful_on_periodic () =
  (* On an exactly periodic trace with a seasonal forecast, anticipation
     cannot hurt much and usually helps (pre-warms before ramps). *)
  let types = [| Model.Server_type.make ~name:"n" ~count:6 ~switching_cost:4. ~cap:1. () |] in
  let fns = [| Convex.Fn.power ~idle:0.5 ~coef:0.8 ~expo:2. |] in
  let load = Array.init 32 (fun t -> float_of_int (1 + (t mod 4))) in
  let inst = Model.Instance.make_static ~types ~load ~fns () in
  let plain = (Online.Alg_a.run inst).Online.Alg_a.schedule in
  let ant =
    Forecast.Predictive.anticipatory_a
      ~make:(fun () -> Forecast.Predictor.seasonal_naive ~period:4)
      ~window:4 inst
  in
  checkb "feasible" true (Model.Schedule.feasible inst ant);
  checkb "not worse than plain A by much" true
    (Model.Cost.schedule inst ant <= (1.1 *. Model.Cost.schedule inst plain) +. 1e-9)

let test_anticipatory_rejects_time_dependent () =
  let inst = Sim.Scenarios.time_varying_costs ~horizon:6 () in
  checkb "raises" true
    (try
       ignore
         (Forecast.Predictive.anticipatory_a ~make:Forecast.Predictor.naive_last ~window:2 inst);
       false
     with Invalid_argument _ -> true)

let test_predictive_validation () =
  let inst = Sim.Scenarios.homogeneous ~horizon:4 () in
  checkb "bad window" true
    (try ignore (Forecast.Predictive.plan ~make:Forecast.Predictor.naive_last ~window:0 inst);
         false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "forecast"
    [ ( "predictors",
        [ Alcotest.test_case "cold start" `Quick test_before_any_observation;
          Alcotest.test_case "naive last" `Quick test_naive_last;
          Alcotest.test_case "seasonal naive exact on periodic" `Quick
            test_seasonal_naive_exact_on_periodic;
          Alcotest.test_case "seasonal naive fallback" `Quick test_seasonal_naive_fallback;
          Alcotest.test_case "ewma convergence" `Quick test_ewma_constant_convergence;
          Alcotest.test_case "ewma alpha=1 is naive" `Quick test_ewma_alpha_one_is_naive;
          Alcotest.test_case "holt tracks linear trend" `Quick test_holt_tracks_linear_trend;
          Alcotest.test_case "holt-winters tracks a cycle" `Quick test_holt_winters_periodic;
          Alcotest.test_case "forecasts clamped at zero" `Quick test_forecast_nonnegative;
          Alcotest.test_case "validation" `Quick test_validation
        ] );
      ( "backtest",
        [ Alcotest.test_case "perfect on constant" `Quick test_backtest_perfect_on_constant;
          Alcotest.test_case "seasonal beats naive on periodic" `Quick
            test_backtest_seasonal_beats_naive_on_periodic;
          Alcotest.test_case "multi-step" `Quick test_backtest_multi_step;
          Alcotest.test_case "mape on all-zero series" `Quick test_backtest_mape_all_zero
        ] );
      ( "predictive",
        [ Alcotest.test_case "feasible and bounded" `Quick test_predictive_feasible_and_bounded;
          Alcotest.test_case "perfect forecast matches oracle" `Quick
            test_predictive_perfect_forecast_matches_oracle;
          Alcotest.test_case "window one" `Quick test_predictive_window_one;
          Alcotest.test_case "validation" `Quick test_predictive_validation;
          Alcotest.test_case "anticipatory window 0 = algorithm A" `Quick
            test_anticipatory_window_zero_is_alg_a;
          Alcotest.test_case "anticipatory feasible and helpful" `Quick
            test_anticipatory_feasible_and_helpful_on_periodic;
          Alcotest.test_case "anticipatory rejects time-dependent" `Quick
            test_anticipatory_rejects_time_dependent
        ] )
    ]
