(* Tests for the fleet planner and the schedule statistics. *)

let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))
let checki = Alcotest.(check int)

let cand ?(capex = 1.) ?(beta = 1.) ?(cap = 1.) ?(idle = 0.5) ~count name =
  { Planner.Fleet.server =
      Model.Server_type.make ~name ~count ~switching_cost:beta ~cap ();
    capex;
    fn = Convex.Fn.power ~idle ~coef:0.5 ~expo:2. }

(* --- Fleet planner --- *)

let test_planner_single_type_sizing () =
  (* One type: the planner must pick just enough servers — capex pushes
     the count down, capacity feasibility pushes it up. *)
  let candidates = [| cand ~capex:10. ~count:8 "node" |] in
  let load = [| 3.; 3.; 3.; 3. |] in
  let p = Planner.Fleet.optimize ~candidates ~load () in
  checki "exactly the peak" 3 p.Planner.Fleet.counts.(0);
  checkb "exhaustive" true p.Planner.Fleet.exhaustive;
  checkf 1e-9 "capex accounted" 30. p.Planner.Fleet.capex

let test_planner_matches_bruteforce () =
  (* Exhaustive reference over the whole lattice. *)
  let candidates =
    [| cand ~capex:2. ~beta:1. ~cap:1. ~count:3 "a";
       cand ~capex:3. ~beta:2. ~cap:2. ~idle:0.8 ~count:2 "b" |]
  in
  let load = [| 1.; 3.; 2.; 0.; 4. |] in
  let p = Planner.Fleet.optimize ~candidates ~load () in
  let brute = ref infinity in
  for a = 0 to 3 do
    for b = 0 to 2 do
      let cap = float_of_int a +. (2. *. float_of_int b) in
      if cap >= 4. then begin
        let types =
          [| Model.Server_type.with_count candidates.(0).Planner.Fleet.server a;
             Model.Server_type.with_count candidates.(1).Planner.Fleet.server b |]
        in
        let fns = Array.map (fun c -> c.Planner.Fleet.fn) candidates in
        let inst = Model.Instance.make_static ~types ~load ~fns () in
        let total =
          (2. *. float_of_int a) +. (3. *. float_of_int b)
          +. (Offline.Dp.solve_optimal inst).Offline.Dp.cost
        in
        if total < !brute then brute := total
      end
    done
  done;
  checkb "matches brute force" true
    (Util.Float_cmp.close ~eps:1e-6 p.Planner.Fleet.total !brute)

let test_planner_capex_tradeoff () =
  (* Free capex: buy the whole fleet never hurts; expensive capex: buy
     the minimum feasible. *)
  let mk capex = [| cand ~capex ~count:5 "node" |] in
  let load = [| 2.; 2. |] in
  let cheap = Planner.Fleet.optimize ~candidates:(mk 0.) ~load () in
  let dear = Planner.Fleet.optimize ~candidates:(mk 1000.) ~load () in
  checkb "cheap capex buys at least as many" true
    (cheap.Planner.Fleet.counts.(0) >= dear.Planner.Fleet.counts.(0));
  checki "dear capex buys the minimum" 2 dear.Planner.Fleet.counts.(0)

let test_planner_prunes () =
  let candidates =
    [| cand ~capex:5. ~count:6 "a"; cand ~capex:5. ~cap:2. ~count:6 "b" |]
  in
  let load = [| 2.; 2.; 2. |] in
  let p = Planner.Fleet.optimize ~candidates ~load () in
  (* Lattice has 49 points; pruning must skip a decent share. *)
  checkb "prunes" true (p.Planner.Fleet.evaluated < 49);
  checkb "still exhaustive" true p.Planner.Fleet.exhaustive

let test_planner_budget_flag () =
  let candidates =
    [| cand ~capex:0.1 ~count:6 "a"; cand ~capex:0.1 ~cap:2. ~count:6 "b" |]
  in
  let load = [| 2.; 2. |] in
  let p = Planner.Fleet.optimize ~budget:3 ~candidates ~load () in
  checkb "budget respected" true (p.Planner.Fleet.evaluated <= 3);
  checkb "flagged non-exhaustive" false p.Planner.Fleet.exhaustive

let test_planner_validation () =
  let candidates = [| cand ~count:1 "tiny" |] in
  checkb "infeasible peak" true
    (try ignore (Planner.Fleet.optimize ~candidates ~load:[| 5. |] ()); false
     with Invalid_argument _ -> true);
  checkb "no candidates" true
    (try ignore (Planner.Fleet.optimize ~candidates:[||] ~load:[| 1. |] ()); false
     with Invalid_argument _ -> true);
  checkb "empty load" true
    (try ignore (Planner.Fleet.optimize ~candidates ~load:[||] ()); false
     with Invalid_argument _ -> true)

let test_planner_robust_covers_all_peaks () =
  let candidates = [| cand ~capex:5. ~count:8 "node" |] in
  let weekday = [| 2.; 5.; 5.; 2. |] and weekend = [| 1.; 2.; 7.; 1. |] in
  let p =
    Planner.Fleet.optimize_robust ~candidates ~scenarios:[ weekday; weekend ] ()
  in
  checkb "covers the joint peak" true (p.Planner.Fleet.counts.(0) >= 7);
  (* Worst-case objective dominates each scenario's own cost. *)
  let per_scenario load =
    (Planner.Fleet.optimize ~candidates ~load ()).Planner.Fleet.operating
  in
  checkb "worst >= weekday alone" true
    (p.Planner.Fleet.operating +. 1e-6 >= per_scenario weekday);
  checkb "worst >= weekend alone" true
    (p.Planner.Fleet.operating +. 1e-6 >= per_scenario weekend)

let test_planner_robust_mean_cheaper_than_worst () =
  let candidates =
    [| cand ~capex:2. ~count:4 "a"; cand ~capex:3. ~cap:2. ~count:3 "b" |]
  in
  let scenarios = [ [| 1.; 4.; 2. |]; [| 3.; 1.; 3. |] ] in
  let worst = Planner.Fleet.optimize_robust ~candidates ~scenarios () in
  let mean = Planner.Fleet.optimize_robust ~objective:`Mean ~candidates ~scenarios () in
  checkb "mean objective <= worst objective" true
    (mean.Planner.Fleet.total <= worst.Planner.Fleet.total +. 1e-9)

let test_planner_robust_validation () =
  let candidates = [| cand ~count:2 "a" |] in
  checkb "no scenarios" true
    (try ignore (Planner.Fleet.optimize_robust ~candidates ~scenarios:[] ()); false
     with Invalid_argument _ -> true)

(* --- Schedule statistics --- *)

let test_schedule_stats () =
  let s = Model.Schedule.of_lists [ [ 2 ]; [ 3 ]; [ 1 ]; [ 0 ]; [ 2 ] ] in
  let st = Model.Schedule.stats s ~typ:0 in
  checki "peak" 3 st.Model.Schedule.peak;
  checkf 1e-9 "mean" 1.6 st.Model.Schedule.mean_active;
  (* Ups: 2 (t0) + 1 (t1) + 2 (t4) = 5; downs: 2 (t2) + 1 (t3) = 3. *)
  checki "ups" 5 st.Model.Schedule.power_ups;
  checki "downs" 3 st.Model.Schedule.power_downs;
  checki "busy" 4 st.Model.Schedule.busy_slots

let test_schedule_stats_consistent_with_costs () =
  (* power_ups * beta equals the switching cost for a one-type schedule
     without down costs. *)
  let inst = Sim.Scenarios.homogeneous ~horizon:20 () in
  let { Offline.Dp.schedule; _ } = Offline.Dp.solve_optimal inst in
  let st = Model.Schedule.stats schedule ~typ:0 in
  let beta = inst.Model.Instance.types.(0).Model.Server_type.switching_cost in
  checkb "ups price the switching" true
    (Util.Float_cmp.close ~eps:1e-9
       (float_of_int st.Model.Schedule.power_ups *. beta)
       (Model.Cost.schedule_switching inst schedule))

let () =
  Alcotest.run "planner"
    [ ( "fleet",
        [ Alcotest.test_case "single-type sizing" `Quick test_planner_single_type_sizing;
          Alcotest.test_case "matches brute force" `Quick test_planner_matches_bruteforce;
          Alcotest.test_case "capex trade-off" `Quick test_planner_capex_tradeoff;
          Alcotest.test_case "pruning" `Quick test_planner_prunes;
          Alcotest.test_case "budget flag" `Quick test_planner_budget_flag;
          Alcotest.test_case "validation" `Quick test_planner_validation;
          Alcotest.test_case "robust: covers all peaks" `Quick
            test_planner_robust_covers_all_peaks;
          Alcotest.test_case "robust: mean vs worst objective" `Quick
            test_planner_robust_mean_cheaper_than_worst;
          Alcotest.test_case "robust: validation" `Quick test_planner_robust_validation
        ] );
      ( "schedule_stats",
        [ Alcotest.test_case "basic counters" `Quick test_schedule_stats;
          Alcotest.test_case "consistent with switching cost" `Quick
            test_schedule_stats_consistent_with_costs
        ] )
    ]
