(* Tests for the s-expression parser and the declarative instance file
   format. *)

let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))
let checki = Alcotest.(check int)

(* --- Sexp --- *)

let test_sexp_atom () =
  match Util.Sexp.parse "hello" with
  | Ok (Util.Sexp.Atom "hello") -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected atom"

let test_sexp_nested () =
  match Util.Sexp.parse "(a (b 1 2.5) ())" with
  | Ok
      (Util.Sexp.List
         [ Util.Sexp.Atom "a";
           Util.Sexp.List [ Util.Sexp.Atom "b"; Util.Sexp.Atom "1"; Util.Sexp.Atom "2.5" ];
           Util.Sexp.List [] ]) ->
      ()
  | Ok s -> Alcotest.failf "unexpected parse: %s" (Util.Sexp.to_string s)
  | Error m -> Alcotest.fail m

let test_sexp_comments_whitespace () =
  match Util.Sexp.parse "  ; leading comment\n ( a ; inline\n b )\n" with
  | Ok (Util.Sexp.List [ Util.Sexp.Atom "a"; Util.Sexp.Atom "b" ]) -> ()
  | Ok _ | Error _ -> Alcotest.fail "comments/whitespace mishandled"

let test_sexp_errors () =
  checkb "unclosed" true (Result.is_error (Util.Sexp.parse "(a b"));
  checkb "stray paren" true (Result.is_error (Util.Sexp.parse ")"));
  checkb "trailing" true (Result.is_error (Util.Sexp.parse "(a) b"));
  checkb "empty" true (Result.is_error (Util.Sexp.parse "   "))

let test_sexp_roundtrip () =
  let text = "(instance (types ((name cpu))) (load 1 2 3))" in
  match Util.Sexp.parse text with
  | Ok s -> Alcotest.(check string) "roundtrip" text (Util.Sexp.to_string s)
  | Error m -> Alcotest.fail m

let test_sexp_parse_many () =
  match Util.Sexp.parse_many "(a) (b) atom" with
  | Ok [ _; _; Util.Sexp.Atom "atom" ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "parse_many"

let test_sexp_helpers () =
  match Util.Sexp.parse "((k 1) (other x))" with
  | Ok (Util.Sexp.List items) ->
      (match Util.Sexp.assoc "k" items with
      | Some [ v ] -> checkb "int atom" true (Util.Sexp.int_atom v = Some 1)
      | Some _ | None -> Alcotest.fail "assoc");
      checkb "missing key" true (Util.Sexp.assoc "absent" items = None)
  | Ok _ | Error _ -> Alcotest.fail "setup"

(* --- Spec: cost expressions --- *)

let parse_cost_exn text =
  match Util.Sexp.parse text with
  | Error m -> Alcotest.fail m
  | Ok s -> (
      match Model.Spec.parse_cost s with
      | Ok fn -> fn
      | Error m -> Alcotest.fail m)

let test_cost_families () =
  checkf 1e-12 "const" 2. (Convex.Fn.eval (parse_cost_exn "(const 2)") 5.);
  checkf 1e-12 "affine" 4.
    (Convex.Fn.eval (parse_cost_exn "(affine (intercept 1) (slope 1.5))") 2.);
  checkf 1e-12 "power" 9.
    (Convex.Fn.eval (parse_cost_exn "(power (idle 1) (coef 2) (expo 2))") 2.);
  checkf 1e-12 "quadratic" 6.
    (Convex.Fn.eval (parse_cost_exn "(quadratic (c0 1) (c1 2) (c2 3))") 1.);
  checkf 1e-12 "piecewise" 1.5
    (Convex.Fn.eval (parse_cost_exn "(piecewise (0 1) (1 2) (2 5))") 0.5);
  checkf 1e-12 "max-affine" 4.
    (Convex.Fn.eval (parse_cost_exn "(max-affine (1 0) (0 2))") 2.)

let test_cost_rejects () =
  let rejects text =
    match Util.Sexp.parse text with
    | Error _ -> true
    | Ok s -> Result.is_error (Model.Spec.parse_cost s)
  in
  checkb "unknown family" true (rejects "(sine (freq 1))");
  checkb "missing field" true (rejects "(affine (intercept 1))");
  checkb "non-convex piecewise" true (rejects "(piecewise (0 0) (1 5) (2 6))");
  checkb "negative const" true (rejects "(const -1)")

(* --- Spec: whole instances --- *)

let sample =
  {|(instance
     (types
       ((name cpu) (count 4) (switching-cost 2) (cap 1)
        (cost (power (idle 0.4) (coef 0.6) (expo 2))))
       ((name gpu) (count 2) (switching-cost 6) (cap 3)
        (cost (affine (intercept 1.0) (slope 0.3)))))
     (load 1 2 5.5 8))|}

let test_instance_parse () =
  match Model.Spec.parse sample with
  | Error m -> Alcotest.fail m
  | Ok inst ->
      checki "types" 2 (Model.Instance.num_types inst);
      checki "horizon" 4 (Model.Instance.horizon inst);
      checkb "time independent" true inst.Model.Instance.time_independent;
      checkf 1e-12 "count" 4. (float_of_int (Model.Instance.max_count inst ~typ:0));
      checkf 1e-12 "idle cost gpu" 1. (Model.Instance.idle_cost inst ~time:0 ~typ:1);
      checkf 1e-12 "load" 5.5 inst.Model.Instance.load.(2)

let test_instance_solvable () =
  match Model.Spec.parse sample with
  | Error m -> Alcotest.fail m
  | Ok inst ->
      let r = Offline.Dp.solve_optimal inst in
      checkb "solves" true (Float.is_finite r.Offline.Dp.cost);
      checkb "feasible" true (Model.Schedule.feasible inst r.Offline.Dp.schedule)

let test_instance_rejects () =
  let rejects text = Result.is_error (Model.Spec.parse text) in
  checkb "not an instance" true (rejects "(problem (types) (load 1))");
  checkb "no types" true (rejects "(instance (types) (load 1))");
  checkb "no load" true (rejects "(instance (types ((count 1) (switching-cost 1) (cap 1) (cost (const 1)))))");
  checkb "empty load" true
    (rejects
       "(instance (types ((count 1) (switching-cost 1) (cap 1) (cost (const 1)))) (load))");
  checkb "negative load" true
    (rejects
       "(instance (types ((count 1) (switching-cost 1) (cap 1) (cost (const 1)))) (load -1))");
  checkb "bad count" true
    (rejects
       "(instance (types ((count 1.5) (switching-cost 1) (cap 1) (cost (const 1)))) (load 1))")

let test_instance_switch_down () =
  match
    Model.Spec.parse
      "(instance (types ((count 1) (switching-cost 2) (switch-down 1.5) (cap 1) (cost (const 1)))) (load 1))"
  with
  | Error m -> Alcotest.fail m
  | Ok inst ->
      checkf 1e-12 "switch_down parsed" 1.5
        inst.Model.Instance.types.(0).Model.Server_type.switch_down

let test_instance_default_name () =
  match
    Model.Spec.parse
      "(instance (types ((count 1) (switching-cost 1) (cap 1) (cost (const 1)))) (load 1))"
  with
  | Error m -> Alcotest.fail m
  | Ok inst ->
      Alcotest.(check string) "default" "server"
        inst.Model.Instance.types.(0).Model.Server_type.name

let test_render_roundtrip_costs () =
  (* to_string samples the curves; re-parsing must give an instance with
     (approximately) the same optimum. *)
  match Model.Spec.parse sample with
  | Error m -> Alcotest.fail m
  | Ok inst -> (
      let text = Model.Spec.to_string inst in
      match Model.Spec.parse text with
      | Error m -> Alcotest.failf "re-parse: %s" m
      | Ok inst' ->
          let a = (Offline.Dp.solve_optimal inst).Offline.Dp.cost in
          let b = (Offline.Dp.solve_optimal inst').Offline.Dp.cost in
          checkb "optimum approximately preserved" true (Float.abs (a -. b) /. a < 0.02))

let test_render_rejects_time_dependent () =
  let inst = Sim.Scenarios.time_varying_costs ~horizon:4 () in
  checkb "raises" true
    (try ignore (Model.Spec.to_string inst); false with Invalid_argument _ -> true)

let test_parse_planning () =
  let text =
    "(instance (types ((name a) (count 3) (capex 2.5) (switching-cost 1) (cap 1) \
     (cost (const 1))) ((name b) (count 2) (switching-cost 2) (cap 2) \
     (cost (const 0.5)))) (load 1 2))"
  in
  match Model.Spec.parse_planning text with
  | Error m -> Alcotest.fail m
  | Ok (triples, load) ->
      checki "two candidates" 2 (Array.length triples);
      let st, fn, capex = triples.(0) in
      checki "max count" 3 st.Model.Server_type.count;
      checkf 1e-12 "capex" 2.5 capex;
      checkf 1e-12 "curve" 1. (Convex.Fn.eval fn 0.5);
      let _, _, capex_b = triples.(1) in
      checkf 1e-12 "capex defaults to 0" 0. capex_b;
      checki "load length" 2 (Array.length load)

let test_parse_planning_rejects_negative_capex () =
  checkb "rejected" true
    (Result.is_error
       (Model.Spec.parse_planning
          "(instance (types ((count 1) (capex -1) (switching-cost 1) (cap 1) (cost (const 1)))) (load 1))"))

let test_load_file () =
  let path = Filename.temp_file "inst" ".sexp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc sample);
      match Model.Spec.load_file path with
      | Ok inst -> checki "loaded" 2 (Model.Instance.num_types inst)
      | Error m -> Alcotest.fail m);
  checkb "missing file" true (Result.is_error (Model.Spec.load_file "/nonexistent/x.sexp"))

let () =
  Alcotest.run "spec"
    [ ( "sexp",
        [ Alcotest.test_case "atom" `Quick test_sexp_atom;
          Alcotest.test_case "nested" `Quick test_sexp_nested;
          Alcotest.test_case "comments and whitespace" `Quick test_sexp_comments_whitespace;
          Alcotest.test_case "errors" `Quick test_sexp_errors;
          Alcotest.test_case "roundtrip" `Quick test_sexp_roundtrip;
          Alcotest.test_case "parse_many" `Quick test_sexp_parse_many;
          Alcotest.test_case "helpers" `Quick test_sexp_helpers
        ] );
      ( "cost",
        [ Alcotest.test_case "all families" `Quick test_cost_families;
          Alcotest.test_case "rejections" `Quick test_cost_rejects
        ] );
      ( "instance",
        [ Alcotest.test_case "parse" `Quick test_instance_parse;
          Alcotest.test_case "solvable" `Quick test_instance_solvable;
          Alcotest.test_case "rejections" `Quick test_instance_rejects;
          Alcotest.test_case "switch-down field" `Quick test_instance_switch_down;
          Alcotest.test_case "default name" `Quick test_instance_default_name;
          Alcotest.test_case "render roundtrip" `Quick test_render_roundtrip_costs;
          Alcotest.test_case "render rejects time-dependent" `Quick
            test_render_rejects_time_dependent;
          Alcotest.test_case "parse_planning" `Quick test_parse_planning;
          Alcotest.test_case "planning rejects negative capex" `Quick
            test_parse_planning_rejects_negative_capex;
          Alcotest.test_case "load_file" `Quick test_load_file
        ] )
    ]
