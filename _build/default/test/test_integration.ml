(* Integration tests across modules, driven through the Core facade —
   the same call paths the examples, CLI and benchmarks use. *)

let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))

let test_core_offline_pipeline () =
  let inst = Core.Scenarios.cpu_gpu ~horizon:24 () in
  let schedule, cost = Core.solve_offline inst in
  checkb "feasible" true (Core.Schedule.feasible inst schedule);
  checkf 1e-6 "cost consistent" cost (Core.Cost.schedule inst schedule);
  let _, approx_cost = Core.solve_approx ~eps:0.2 inst in
  checkb "approx within bound" true (approx_cost <= (1.2 *. cost) +. 1e-6);
  checkb "approx above opt" true (approx_cost >= cost -. 1e-6)

let test_core_online_dispatches_by_instance_kind () =
  let static_inst = Core.Scenarios.cpu_gpu ~horizon:16 () in
  let s, cs = Core.run_online static_inst in
  checkb "A feasible" true (Core.Schedule.feasible static_inst s);
  checkb "A ratio within 2d+1" true
    (Core.competitive_ratio static_inst s <= 5. +. 1e-6);
  checkf 1e-6 "cost consistent" cs (Core.Cost.schedule static_inst s);
  let dyn_inst = Core.Scenarios.time_varying_costs ~horizon:16 () in
  let sd, _ = Core.run_online ~eps:0.5 dyn_inst in
  checkb "C feasible" true (Core.Schedule.feasible dyn_inst sd);
  checkb "C ratio within 2d+1+eps" true
    (Core.competitive_ratio dyn_inst sd <= 5.5 +. 1e-6)

let test_full_suite_ordering () =
  (* On the motivating diurnal trace, the paper's narrative: OPT <= any
     policy; right-sizing beats both static extremes. *)
  let inst = Core.Scenarios.cpu_gpu ~horizon:48 () in
  let named = Core.Harness.run_suite inst in
  let opt = Core.Harness.opt_cost inst in
  let evals = Core.Harness.evaluate inst ~opt named in
  List.iter
    (fun e ->
      checkb (e.Core.Harness.name ^ " feasible") true e.Core.Harness.feasible;
      checkb (e.Core.Harness.name ^ " >= OPT") true (e.Core.Harness.ratio >= 1. -. 1e-6))
    evals;
  let ratio name =
    (List.find (fun e -> e.Core.Harness.name = name) evals).Core.Harness.ratio
  in
  checkb "algorithm A within its guarantee" true (ratio "alg-A" <= 5.);
  (* The online algorithm beats naive always-on provisioning on a trace
     with deep night-time valleys. *)
  checkb "right-sizing beats always-on" true (ratio "alg-A" <= ratio "always-on" +. 0.5)

let test_time_varying_end_to_end () =
  let inst = Core.Scenarios.maintenance () in
  let schedule, cost = Core.solve_offline inst in
  checkb "feasible under availability" true (Core.Schedule.feasible inst schedule);
  let _, acost = Core.solve_approx ~eps:0.5 inst in
  checkb "Theorem 22" true (acost <= (1.5 *. cost) +. 1e-6)

let test_resonant_bursts_stress_alg_a () =
  (* The adversarial probe drives A's ratio visibly above 1 (the online
     penalty) while staying within the 2d+1 guarantee. *)
  let inst = Core.Scenarios.resonant_bursts ~d:2 ~rounds:4 in
  let r = Core.Alg_a.run inst in
  let opt = Core.Harness.opt_cost inst in
  let ratio = Core.Cost.schedule inst r.Core.Alg_a.schedule /. opt in
  checkb "stressed above 1.2" true (ratio > 1.2);
  checkb "within 2d+1" true (ratio <= 5. +. 1e-9)

let test_chasing_demo () =
  let o = Core.Adversary.chasing_lower_bound ~d:10 in
  checkb "exponential online cost" true (o.Core.Adversary.online_cost >= 256.);
  checkb "cheap offline" true (o.Core.Adversary.offline_cost <= 10.)

let test_homogeneous_matches_d1_literature () =
  (* For d = 1 algorithm A is the 3-competitive discrete algorithm of
     [3, 4]; check the guarantee on the homogeneous scenario. *)
  let inst = Core.Scenarios.homogeneous ~horizon:40 () in
  let r = Core.Alg_a.run inst in
  let ratio = Core.competitive_ratio inst r.Core.Alg_a.schedule in
  checkb "within 3" true (ratio <= 3. +. 1e-9);
  checkb "LCP also reasonable" true
    (Core.competitive_ratio inst (Core.Baselines.lcp_1d inst) <= 4.)

let test_deterministic_repetition () =
  (* Everything is seeded: two identical runs give identical costs. *)
  let run () =
    let inst = Core.Scenarios.three_tier ~horizon:30 () in
    let _, cost = Core.solve_offline inst in
    let r = Core.Alg_a.run inst in
    (cost, Core.Cost.schedule inst r.Core.Alg_a.schedule)
  in
  let c1, a1 = run () in
  let c2, a2 = run () in
  checkf 0. "opt deterministic" c1 c2;
  checkf 0. "alg A deterministic" a1 a2

let test_figures_emit_svg_artifacts () =
  List.iter
    (fun id ->
      match Core.Experiment_registry.find id with
      | None -> Alcotest.fail ("missing experiment " ^ id)
      | Some e ->
          let report = e.Core.Experiment_registry.run () in
          (match report.Core.Report.artifacts with
          | [ (name, content) ] ->
              checkb "svg filename" true (Filename.check_suffix name ".svg");
              checkb "svg content" true
                (String.length content > 100
                && String.sub content 0 4 = "<svg")
          | _ -> Alcotest.fail "expected exactly one artifact"))
    [ "fig1"; "fig3"; "fig5" ]

let test_registry_well_formed () =
  let ids = Core.Experiment_registry.ids () in
  let uniq = List.sort_uniq compare ids in
  Alcotest.(check int) "ids unique" (List.length ids) (List.length uniq);
  checkb "finds every id" true
    (List.for_all (fun id -> Core.Experiment_registry.find id <> None) ids);
  checkb "misses unknown ids" true (Core.Experiment_registry.find "nope" = None)

let test_fast_experiments_pass () =
  (* The cheap experiments run inside the test suite; bench/main.exe and
     `rightsizer verify` cover the rest. *)
  List.iter
    (fun id ->
      match Core.Experiment_registry.find id with
      | None -> Alcotest.fail ("missing " ^ id)
      | Some e ->
          let report = e.Core.Experiment_registry.run () in
          checkb (id ^ " machine-check") true report.Core.Report.pass)
    [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "geo" ]

let () =
  Alcotest.run "integration"
    [ ( "end_to_end",
        [ Alcotest.test_case "offline pipeline" `Quick test_core_offline_pipeline;
          Alcotest.test_case "online dispatch by instance kind" `Quick
            test_core_online_dispatches_by_instance_kind;
          Alcotest.test_case "full suite ordering" `Slow test_full_suite_ordering;
          Alcotest.test_case "time-varying end to end" `Quick test_time_varying_end_to_end;
          Alcotest.test_case "resonant bursts stress A" `Quick
            test_resonant_bursts_stress_alg_a;
          Alcotest.test_case "chasing demo" `Quick test_chasing_demo;
          Alcotest.test_case "homogeneous d=1 guarantee" `Quick
            test_homogeneous_matches_d1_literature;
          Alcotest.test_case "deterministic repetition" `Quick test_deterministic_repetition;
          Alcotest.test_case "figures emit SVG artifacts" `Quick
            test_figures_emit_svg_artifacts;
          Alcotest.test_case "registry well-formed" `Quick test_registry_well_formed;
          Alcotest.test_case "fast experiments pass their checks" `Slow
            test_fast_experiments_pass
        ] )
    ]
