(* Tests for the discrete-event simulator: job traces, the scheduler
   equivalence with the analytic cost model, boot-delay effects, backlog
   accounting, and the controllers. *)

let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))
let checki = Alcotest.(check int)

let st = Model.Server_type.make

let simple ?(horizon = 6) ?(beta = 3.) ~load () =
  let types = [| st ~name:"node" ~count:5 ~switching_cost:beta ~cap:1. () |] in
  let fns = [| Convex.Fn.power ~idle:0.5 ~coef:1. ~expo:2. |] in
  let load = match load with Some l -> l | None -> Array.make horizon 2. in
  Model.Instance.make_static ~types ~load ~fns ()

(* --- Job_trace --- *)

let test_trace_of_volumes_roundtrip () =
  let loads = [| 0.; 2.5; 0.; 1. |] in
  let trace = Dcsim.Job_trace.of_volumes loads in
  checki "zero slots emit no job" 2 (Dcsim.Job_trace.count trace);
  Alcotest.(check (array (float 1e-12))) "aggregation inverts" loads
    (Dcsim.Job_trace.volumes trace ~horizon:4)

let test_trace_poisson_moments () =
  let rng = Util.Prng.create 7 in
  let trace = Dcsim.Job_trace.poisson ~rng ~horizon:2000 ~rate:2. ~mean_volume:1.5 in
  let expected = 2000. *. 2. *. 1.5 in
  let total = Dcsim.Job_trace.total_volume trace in
  checkb "total volume near expectation" true
    (Float.abs (total -. expected) /. expected < 0.1);
  checkb "job count near expectation" true
    (Float.abs (float_of_int (Dcsim.Job_trace.count trace) -. 4000.) /. 4000. < 0.1)

let test_trace_volumes_clips_horizon () =
  let trace = [| { Dcsim.Job_trace.arrival = 9; volume = 5. } |] in
  Alcotest.(check (array (float 0.))) "out of range ignored" [| 0.; 0. |]
    (Dcsim.Job_trace.volumes trace ~horizon:2)

(* --- Sim: equivalence with the analytic model --- *)

let test_sim_matches_cost_model () =
  (* Zero boot delay + feasible schedule: energy + switching equals
     Cost.schedule to the last bit of tolerance. *)
  List.iter
    (fun inst ->
      let { Offline.Dp.schedule; cost } = Offline.Dp.solve_optimal inst in
      let m = Dcsim.Sim.run_schedule inst schedule in
      checkb "cost equivalence" true
        (Util.Float_cmp.close ~eps:1e-9 cost (m.Dcsim.Sim.energy +. m.Dcsim.Sim.switching));
      checkf 1e-9 "nothing unserved" 0. m.Dcsim.Sim.unserved;
      checkf 1e-9 "everything served" (Array.fold_left ( +. ) 0. inst.Model.Instance.load)
        m.Dcsim.Sim.served)
    [ Sim.Scenarios.cpu_gpu ~horizon:16 ();
      Sim.Scenarios.three_tier ~horizon:12 ();
      Sim.Scenarios.time_varying_costs ~horizon:12 () ]

let test_sim_counts_power_ups () =
  let inst = simple ~load:(Some [| 2.; 2.; 0.; 0.; 2.; 2. |]) () in
  let schedule = Model.Schedule.of_lists [ [ 2 ]; [ 2 ]; [ 0 ]; [ 0 ]; [ 2 ]; [ 2 ] ] in
  let m = Dcsim.Sim.run_schedule inst schedule in
  checki "4 individual power-ups" 4 m.Dcsim.Sim.power_up_events;
  checkf 1e-9 "switching = 4 beta" 12. m.Dcsim.Sim.switching

let test_sim_boot_delay_drops_volume () =
  (* One slot of boot delay: the first burst finds no capacity. *)
  let inst = simple ~load:(Some [| 2.; 2.; 0.; 0.; 0.; 0. |]) () in
  let schedule = Model.Schedule.of_lists [ [ 2 ]; [ 2 ]; [ 0 ]; [ 0 ]; [ 0 ]; [ 0 ] ] in
  let cfg = { Dcsim.Sim.boot_delay = [| 1 |]; carry_backlog = false; failures = None } in
  let m = Dcsim.Sim.run_schedule ~config:cfg inst schedule in
  checkf 1e-9 "first slot dropped" 2. m.Dcsim.Sim.unserved;
  checkf 1e-9 "rest served" 2. m.Dcsim.Sim.served

let test_sim_backlog_carries () =
  let inst = simple ~load:(Some [| 2.; 0.; 0.; 0.; 0.; 0. |]) () in
  let schedule = Model.Schedule.of_lists [ [ 2 ]; [ 2 ]; [ 0 ]; [ 0 ]; [ 0 ]; [ 0 ] ] in
  let cfg = { Dcsim.Sim.boot_delay = [| 1 |]; carry_backlog = true; failures = None } in
  let m = Dcsim.Sim.run_schedule ~config:cfg inst schedule in
  (* The burst waits one slot in the backlog, then the booted servers
     drain it. *)
  checkf 1e-9 "eventually served" 2. m.Dcsim.Sim.served;
  checkf 1e-9 "nothing dropped" 0. m.Dcsim.Sim.unserved;
  checkf 1e-9 "peak backlog" 2. m.Dcsim.Sim.backlog_peak

let test_sim_volume_conservation () =
  (* served + unserved + final backlog = total arrivals, whatever the
     configuration. *)
  let rng = Util.Prng.create 33 in
  for _ = 1 to 10 do
    let inst = Sim.Scenarios.random_static ~rng ~d:2 ~horizon:8 ~max_count:3 in
    let { Offline.Dp.schedule; _ } = Offline.Dp.solve_optimal inst in
    List.iter
      (fun carry ->
        let cfg = { Dcsim.Sim.boot_delay = [| 1; 2 |]; carry_backlog = carry; failures = None } in
        let m = Dcsim.Sim.run_schedule ~config:cfg inst schedule in
        let arrived = Array.fold_left ( +. ) 0. inst.Model.Instance.load in
        (* With carry, un-drained backlog at the horizon is neither
           served nor dropped; bound instead of equality. *)
        checkb "conservation" true
          (m.Dcsim.Sim.served +. m.Dcsim.Sim.unserved <= arrived +. 1e-6))
      [ true; false ]
  done

let test_sim_boot_cancellation () =
  (* Command up then immediately down: booting servers are cancelled, no
     server ever becomes active, but the switching cost was paid. *)
  let inst = simple ~load:(Some [| 0.; 0.; 0.; 0.; 0.; 0. |]) () in
  let schedule = Model.Schedule.of_lists [ [ 3 ]; [ 0 ]; [ 0 ]; [ 0 ]; [ 0 ]; [ 0 ] ] in
  let cfg = { Dcsim.Sim.boot_delay = [| 3 |]; carry_backlog = false; failures = None } in
  let m = Dcsim.Sim.run_schedule ~config:cfg inst schedule in
  checkf 1e-9 "paid for the aborted boots" 9. m.Dcsim.Sim.switching;
  (* Energy: one slot of 3 booting servers' idle power. *)
  checkf 1e-9 "one slot of boot idle" (3. *. 0.5) m.Dcsim.Sim.energy

let test_sim_rejects_bad_inputs () =
  let inst = simple ~load:None () in
  let schedule = Array.make 6 [| 9 |] in
  checkb "target above fleet" true
    (try ignore (Dcsim.Sim.run_schedule inst schedule); false
     with Invalid_argument _ -> true);
  checkb "boot_delay arity" true
    (try
       ignore
         (Dcsim.Sim.run_schedule
            ~config:{ Dcsim.Sim.boot_delay = [| 0; 0 |]; carry_backlog = false; failures = None }
            inst
            (Array.make 6 [| 0 |]));
       false
     with Invalid_argument _ -> true)

let test_sim_failures_deterministic () =
  let inst = simple ~load:(Some (Array.make 6 3.)) () in
  let schedule = Array.make 6 [| 4 |] in
  let cfg rate =
    { Dcsim.Sim.boot_delay = [| 0 |];
      carry_backlog = false;
      failures = Some { Dcsim.Sim.rate; repair_slots = 2; seed = 9 } }
  in
  let a = Dcsim.Sim.run_schedule ~config:(cfg 0.3) inst schedule in
  let b = Dcsim.Sim.run_schedule ~config:(cfg 0.3) inst schedule in
  checki "same failure stream" a.Dcsim.Sim.failures b.Dcsim.Sim.failures;
  checkb "failures happened" true (a.Dcsim.Sim.failures > 0);
  (* Rate 0 is exactly the reliable run. *)
  let clean = Dcsim.Sim.run_schedule ~config:(cfg 0.) inst schedule in
  let reliable = Dcsim.Sim.run_schedule inst schedule in
  checki "no failures at rate 0" 0 clean.Dcsim.Sim.failures;
  checkb "rate 0 = reliable" true
    (Util.Float_cmp.close ~eps:1e-9
       (clean.Dcsim.Sim.energy +. clean.Dcsim.Sim.switching)
       (reliable.Dcsim.Sim.energy +. reliable.Dcsim.Sim.switching))

let test_sim_failures_cost_resilience () =
  (* With a fixed-schedule operator failures drop volume; the replacement
     power-ups cost extra switching when the controller re-requests. *)
  let inst = simple ~load:(Some (Array.make 8 3.)) () in
  let schedule = Array.make 8 [| 3 |] in
  let cfg =
    { Dcsim.Sim.boot_delay = [| 0 |];
      carry_backlog = false;
      failures = Some { Dcsim.Sim.rate = 0.15; repair_slots = 2; seed = 4 } }
  in
  let m = Dcsim.Sim.run_schedule ~config:cfg inst schedule in
  checkb "volume lost or re-bought" true
    (m.Dcsim.Sim.unserved > 0. || m.Dcsim.Sim.power_up_events > 3);
  checkb "validation" true
    (try
       ignore
         (Dcsim.Sim.run_schedule
            ~config:
              { Dcsim.Sim.boot_delay = [| 0 |];
                carry_backlog = false;
                failures = Some { Dcsim.Sim.rate = 2.; repair_slots = 1; seed = 1 } }
            inst schedule);
       false
     with Invalid_argument _ -> true)

let test_sim_failures_repair_returns_capacity () =
  (* After repair the controller can re-power the unit: with rate forced
     on a single slot via seed choice the long-run service recovers. *)
  let inst = simple ~load:(Some (Array.make 12 2.)) () in
  let cfg =
    { Dcsim.Sim.boot_delay = [| 0 |];
      carry_backlog = false;
      failures = Some { Dcsim.Sim.rate = 0.2; repair_slots = 1; seed = 2 } }
  in
  (* A replenishing controller: always ask for 3. *)
  let m, _ =
    Dcsim.Sim.run_controller ~config:cfg inst (fun ~time:_ ~load:_ ~backlog:_ -> [| 3 |])
  in
  (* Demand 2 with 3 requested: single-unit failures cannot drop volume
     except in the slot capacity dips below 2 before re-request. *)
  checkb "mostly served" true (m.Dcsim.Sim.served >= 0.8 *. 24.)

let test_sim_energy_by_type_sums () =
  let inst = Sim.Scenarios.cpu_gpu ~horizon:16 () in
  let { Offline.Dp.schedule; _ } = Offline.Dp.solve_optimal inst in
  let m = Dcsim.Sim.run_schedule inst schedule in
  let parts = Array.fold_left ( +. ) 0. m.Dcsim.Sim.energy_by_type in
  checkb "per-type energy sums to total" true
    (Util.Float_cmp.close ~eps:1e-9 parts m.Dcsim.Sim.energy)

(* --- run_trace: job-level latency --- *)

let test_trace_waits_zero_with_ample_capacity () =
  let inst = simple ~load:(Some [| 2.; 2.; 2.; 2.; 2.; 2. |]) () in
  let trace = Dcsim.Job_trace.of_volumes inst.Model.Instance.load in
  let m, w, _ =
    Dcsim.Sim.run_trace inst trace (fun ~time:_ ~load:_ ~backlog:_ -> [| 5 |])
  in
  checkf 1e-9 "all served" 12. m.Dcsim.Sim.served;
  checki "all jobs completed" 6 w.Dcsim.Sim.completed;
  checkf 1e-9 "no waiting" 0. w.Dcsim.Sim.max_wait;
  checki "none abandoned" 0 w.Dcsim.Sim.abandoned

let test_trace_waits_grow_under_tight_capacity () =
  (* A burst of 6 volume with capacity 2/slot: the tail waits ~2 slots. *)
  let inst = simple ~load:(Some [| 6.; 0.; 0.; 0.; 0.; 0. |]) () in
  let trace =
    [| { Dcsim.Job_trace.arrival = 0; volume = 2. };
       { Dcsim.Job_trace.arrival = 0; volume = 2. };
       { Dcsim.Job_trace.arrival = 0; volume = 2. } |]
  in
  let _, w, _ =
    Dcsim.Sim.run_trace inst trace (fun ~time:_ ~load:_ ~backlog:_ -> [| 2 |])
  in
  checki "all complete eventually" 3 w.Dcsim.Sim.completed;
  checkf 1e-9 "head job immediate" 0.
    (if w.Dcsim.Sim.completed = 3 then 0. else 1.);
  checkf 1e-9 "max wait = 2 slots" 2. w.Dcsim.Sim.max_wait;
  checkf 1e-9 "mean wait" 1. w.Dcsim.Sim.mean_wait

let test_trace_fifo_order () =
  (* A large early job delays a tiny later one (FIFO, no overtaking). *)
  let inst = simple ~load:(Some [| 4.; 0.1; 0.; 0.; 0.; 0. |]) () in
  let trace =
    [| { Dcsim.Job_trace.arrival = 0; volume = 4. };
       { Dcsim.Job_trace.arrival = 1; volume = 0.1 } |]
  in
  let _, w, _ =
    Dcsim.Sim.run_trace inst trace (fun ~time:_ ~load:_ ~backlog:_ -> [| 2 |])
  in
  (* Big job: slots 0-1 (wait 1); tiny job: finishes slot 1 after the big
     one completes within the same slot's budget (wait 0). *)
  checki "both complete" 2 w.Dcsim.Sim.completed;
  checkf 1e-9 "max wait" 1. w.Dcsim.Sim.max_wait

let test_trace_abandoned_at_horizon () =
  let inst = simple ~load:(Some [| 5.; 0. |]) () in
  let trace = [| { Dcsim.Job_trace.arrival = 0; volume = 5. } |] in
  let m, w, _ =
    Dcsim.Sim.run_trace inst trace (fun ~time:_ ~load:_ ~backlog:_ -> [| 1 |])
  in
  checki "unfinished job abandoned" 1 w.Dcsim.Sim.abandoned;
  checkb "leftover volume reported" true (m.Dcsim.Sim.unserved > 2.9)

let test_trace_energy_consistent_with_scalar_run () =
  (* Aggregated per-slot volumes served by ample capacity: the job-level
     run must meter the same energy as the scalar run. *)
  let inst = Sim.Scenarios.homogeneous ~horizon:12 () in
  let { Offline.Dp.schedule; _ } = Offline.Dp.solve_optimal inst in
  let trace = Dcsim.Job_trace.of_volumes inst.Model.Instance.load in
  let scalar = Dcsim.Sim.run_schedule inst schedule in
  let joblevel, _, _ =
    Dcsim.Sim.run_trace inst trace (Dcsim.Controllers.of_schedule schedule)
  in
  checkb "same energy" true
    (Util.Float_cmp.close ~eps:1e-9 scalar.Dcsim.Sim.energy joblevel.Dcsim.Sim.energy);
  checkb "same switching" true
    (Util.Float_cmp.close ~eps:1e-9 scalar.Dcsim.Sim.switching joblevel.Dcsim.Sim.switching)

(* --- Controllers --- *)

let test_controller_of_schedule () =
  let inst = Sim.Scenarios.cpu_gpu ~horizon:10 () in
  let { Offline.Dp.schedule; cost } = Offline.Dp.solve_optimal inst in
  let m, commanded =
    Dcsim.Sim.run_controller inst (Dcsim.Controllers.of_schedule schedule)
  in
  checkb "replays exactly" true
    (Util.Float_cmp.close ~eps:1e-9 cost (m.Dcsim.Sim.energy +. m.Dcsim.Sim.switching));
  checkb "commanded = schedule" true (commanded = schedule)

let test_controller_alg_a_matches_batch () =
  (* The controller wrapping must reproduce Alg_a.run decision for
     decision. *)
  let inst = Sim.Scenarios.cpu_gpu ~horizon:18 () in
  let batch = (Online.Alg_a.run inst).Online.Alg_a.schedule in
  let _, commanded = Dcsim.Sim.run_controller inst (Dcsim.Controllers.alg_a inst) in
  checkb "identical schedules" true (commanded = batch)

let test_controller_alg_b_matches_batch () =
  let inst = Sim.Scenarios.time_varying_costs ~horizon:14 () in
  let batch = (Online.Alg_b.run inst).Online.Alg_b.schedule in
  let _, commanded = Dcsim.Sim.run_controller inst (Dcsim.Controllers.alg_b inst) in
  checkb "identical schedules" true (commanded = batch)

let test_controller_hysteresis_serves_everything () =
  let inst = Sim.Scenarios.cpu_gpu ~horizon:24 () in
  let m, commanded =
    Dcsim.Sim.run_controller inst (Dcsim.Controllers.hysteresis ~up:0.8 ~down:0.3 inst)
  in
  checkf 1e-6 "no drops in the ideal setting" 0. m.Dcsim.Sim.unserved;
  checkb "feasible commands" true (Model.Schedule.feasible inst commanded)

let test_controller_hysteresis_band () =
  (* Utilisation stays at or below the upper threshold whenever the
     fleet has room. *)
  let inst = simple ~load:(Some [| 1.; 2.; 3.; 4.; 3.; 1. |]) () in
  let up = 0.9 in
  let _, commanded =
    Dcsim.Sim.run_controller inst (Dcsim.Controllers.hysteresis ~up ~down:0.2 inst)
  in
  Array.iteri
    (fun t x ->
      let cap = Model.Config.capacity inst.Model.Instance.types x in
      checkb
        (Printf.sprintf "slot %d within band" t)
        true
        (cap = 0. || inst.Model.Instance.load.(t) /. cap <= up +. 1e-9))
    commanded

let test_controller_hysteresis_validation () =
  let inst = simple ~load:None () in
  checkb "bad thresholds" true
    (try
       let _ : Dcsim.Sim.controller = Dcsim.Controllers.hysteresis ~up:0.2 ~down:0.5 inst in
       false
     with Invalid_argument _ -> true)

let test_controller_static_peak () =
  let inst = Sim.Scenarios.cpu_gpu ~horizon:24 () in
  let m, commanded = Dcsim.Sim.run_controller inst (Dcsim.Controllers.static_peak inst) in
  checkf 1e-6 "serves everything" 0. m.Dcsim.Sim.unserved;
  (* Constant configuration throughout. *)
  Array.iter
    (fun x -> checkb "constant" true (Model.Config.equal x commanded.(0)))
    commanded

let test_alg_a_beats_static_peak_in_sim () =
  let inst = Sim.Scenarios.cpu_gpu ~horizon:48 () in
  let cost m = m.Dcsim.Sim.energy +. m.Dcsim.Sim.switching in
  let ma, _ = Dcsim.Sim.run_controller inst (Dcsim.Controllers.alg_a inst) in
  let mp, _ = Dcsim.Sim.run_controller inst (Dcsim.Controllers.static_peak inst) in
  checkb "right-sizing wins on diurnal traces" true (cost ma < cost mp)

let () =
  Alcotest.run "dcsim"
    [ ( "job_trace",
        [ Alcotest.test_case "of_volumes roundtrip" `Quick test_trace_of_volumes_roundtrip;
          Alcotest.test_case "poisson moments" `Quick test_trace_poisson_moments;
          Alcotest.test_case "volumes clips horizon" `Quick test_trace_volumes_clips_horizon
        ] );
      ( "sim",
        [ Alcotest.test_case "equivalence with the cost model" `Quick
            test_sim_matches_cost_model;
          Alcotest.test_case "power-up accounting" `Quick test_sim_counts_power_ups;
          Alcotest.test_case "boot delay drops volume" `Quick test_sim_boot_delay_drops_volume;
          Alcotest.test_case "backlog carries" `Quick test_sim_backlog_carries;
          Alcotest.test_case "volume conservation" `Quick test_sim_volume_conservation;
          Alcotest.test_case "boot cancellation" `Quick test_sim_boot_cancellation;
          Alcotest.test_case "input validation" `Quick test_sim_rejects_bad_inputs;
          Alcotest.test_case "failure injection deterministic" `Quick
            test_sim_failures_deterministic;
          Alcotest.test_case "failures cost resilience" `Quick
            test_sim_failures_cost_resilience;
          Alcotest.test_case "repair returns capacity" `Quick
            test_sim_failures_repair_returns_capacity;
          Alcotest.test_case "per-type energy attribution" `Quick
            test_sim_energy_by_type_sums
        ] );
      ( "run_trace",
        [ Alcotest.test_case "zero waits with ample capacity" `Quick
            test_trace_waits_zero_with_ample_capacity;
          Alcotest.test_case "waits grow under tight capacity" `Quick
            test_trace_waits_grow_under_tight_capacity;
          Alcotest.test_case "FIFO order" `Quick test_trace_fifo_order;
          Alcotest.test_case "abandoned at horizon" `Quick test_trace_abandoned_at_horizon;
          Alcotest.test_case "energy consistent with scalar run" `Quick
            test_trace_energy_consistent_with_scalar_run
        ] );
      ( "controllers",
        [ Alcotest.test_case "of_schedule replay" `Quick test_controller_of_schedule;
          Alcotest.test_case "alg-A controller = batch run" `Quick
            test_controller_alg_a_matches_batch;
          Alcotest.test_case "alg-B controller = batch run" `Quick
            test_controller_alg_b_matches_batch;
          Alcotest.test_case "hysteresis serves everything" `Quick
            test_controller_hysteresis_serves_everything;
          Alcotest.test_case "hysteresis respects the band" `Quick
            test_controller_hysteresis_band;
          Alcotest.test_case "hysteresis validation" `Quick
            test_controller_hysteresis_validation;
          Alcotest.test_case "static peak" `Quick test_controller_static_peak;
          Alcotest.test_case "alg-A beats static peak in simulation" `Quick
            test_alg_a_beats_static_peak_in_sim
        ] )
    ]
