(* Run the paper's online algorithm as a *controller* inside the
   discrete-event simulator, against the threshold autoscalers real
   clouds deploy — including the effect of boot delays the paper's model
   abstracts away, on a job-level Poisson trace.

     dune exec examples/autoscaler_shootout.exe
*)

let () =
  (* Build the aggregate instance from a job-level trace, the direction
     a practitioner would come from. *)
  let horizon = 48 in
  let rng = Core.Prng.create 77 in
  let trace = Core.Job_trace.poisson ~rng ~horizon ~rate:4. ~mean_volume:1.4 in
  let load =
    Core.Workload.clamp ~lo:0. ~hi:18. (Core.Job_trace.volumes trace ~horizon)
  in
  Printf.printf "%d jobs, %.1f total volume, aggregated into %d slots\n"
    (Core.Job_trace.count trace)
    (Core.Job_trace.total_volume trace)
    horizon;
  Printf.printf "load: %s\n\n" (Core.Ascii_plot.sparkline load);
  let types =
    [| Core.Server_type.make ~name:"web" ~count:12 ~switching_cost:2.5 ~cap:1. ();
       Core.Server_type.make ~name:"compute" ~count:4 ~switching_cost:8. ~cap:3. () |]
  in
  let fns =
    [| Core.Fn.power ~idle:0.5 ~coef:0.7 ~expo:2.;
       Core.Fn.power ~idle:1.1 ~coef:0.4 ~expo:1.6 |]
  in
  let inst = Core.Instance.make_static ~types ~load ~fns () in
  let opt = Core.Harness.opt_cost inst in
  Printf.printf "offline optimum (hindsight): %.2f\n\n" opt;

  (* Controllers carry closure state, so they are rebuilt per run. *)
  let controllers =
    [ ("algorithm A (paper)", fun () -> Core.Controllers.alg_a inst);
      ("hysteresis 80/30", fun () -> Core.Controllers.hysteresis ~up:0.8 ~down:0.3 inst);
      ("hysteresis 60/20", fun () -> Core.Controllers.hysteresis ~up:0.6 ~down:0.2 inst);
      ("static peak", fun () -> Core.Controllers.static_peak inst) ]
  in
  List.iter
    (fun delay ->
      Printf.printf "boot delay = %d slot(s):\n" delay;
      let tbl =
        Core.Table.create
          ~header:[ "controller"; "cost"; "vs OPT"; "unserved"; "utilisation" ]
      in
      List.iter
        (fun (name, mk) ->
          let config =
            { Core.Sim_dc.boot_delay = Array.make 2 delay; carry_backlog = false; failures = None }
          in
          let m, _ = Core.Sim_dc.run_controller ~config inst (mk ()) in
          Core.Table.add_row tbl
            [ name;
              Printf.sprintf "%.2f" (m.Core.Sim_dc.energy +. m.Core.Sim_dc.switching);
              Printf.sprintf "%.3f" ((m.Core.Sim_dc.energy +. m.Core.Sim_dc.switching) /. opt);
              Printf.sprintf "%.2f" m.Core.Sim_dc.unserved;
              Printf.sprintf "%.2f" m.Core.Sim_dc.mean_utilisation ])
        controllers;
      Core.Table.print tbl;
      print_newline ())
    [ 0; 1; 2 ];
  print_string
    "reading: on a spiky, structure-free trace static provisioning is\n\
     hard to beat (powering down buys little between random bursts) and\n\
     reactive policies drop volume once boots take time; algorithm A\n\
     stays closest to OPT among the adaptive policies while threshold\n\
     autoscalers thrash.  Compare examples/datacenter_day.exe, where the\n\
     diurnal structure reverses the ranking — exactly the regime the\n\
     paper's competitive guarantee is about.\n"
