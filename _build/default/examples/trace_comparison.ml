(* Which policy wins on which kind of trace?  Runs the full line-up
   (OPT, algorithm A or B/C, the randomised variant, and the operating
   baselines) across four synthetic trace families with the same
   three-tier fleet, and prints a ratio matrix.

     dune exec examples/trace_comparison.exe
*)

let fleet () =
  [| Core.Server_type.make ~name:"legacy" ~count:5 ~switching_cost:1.5 ~cap:1. ();
     Core.Server_type.make ~name:"modern" ~count:4 ~switching_cost:4. ~cap:2. () |]

let fns () =
  [| Core.Fn.power ~idle:0.8 ~coef:0.9 ~expo:2.;
     Core.Fn.power ~idle:0.5 ~coef:0.5 ~expo:2. |]

let traces =
  [ ( "diurnal",
      fun rng ->
        Core.Workload.diurnal ~noise:0.1 ~rng ~horizon:48 ~period:24 ~base:0.5 ~peak:10. () );
    ( "bursty",
      fun _ -> Core.Workload.bursty ~horizon:48 ~burst:3 ~gap:9 ~height:9. ~base:1. () );
    ( "random-walk",
      fun rng -> Core.Workload.random_walk ~rng ~horizon:48 ~start:5. ~step:1.5 ~lo:0. ~hi:12. );
    ( "spiky",
      fun rng -> Core.Workload.spikes ~rng ~horizon:48 ~base:2. ~height:8. ~rate:0.08 ) ]

let () =
  let tbl =
    Core.Table.create
      ~header:[ "trace"; "OPT cost"; "alg-A"; "alg-A-rand"; "always-on"; "follow-dem";
                "horizon-3" ]
  in
  List.iter
    (fun (name, mk) ->
      let rng = Core.Prng.create 2024 in
      let load = mk rng in
      let inst = Core.Instance.make_static ~types:(fleet ()) ~load ~fns:(fns ()) () in
      let opt = Core.Harness.opt_cost inst in
      let ratio schedule = Core.Cost.schedule inst schedule /. opt in
      let rand_ratio =
        let n = 10 in
        let acc = ref 0. in
        for seed = 1 to n do
          let rrng = Core.Prng.create (300 + seed) in
          acc := !acc +. ratio (Core.Alg_rand.run ~rng:rrng inst).Core.Alg_rand.schedule
        done;
        !acc /. float_of_int n
      in
      Core.Table.add_row tbl
        [ name;
          Printf.sprintf "%.1f" opt;
          Printf.sprintf "%.3f" (ratio (Core.Alg_a.run inst).Core.Alg_a.schedule);
          Printf.sprintf "%.3f" rand_ratio;
          Printf.sprintf "%.3f" (ratio (Core.Baselines.always_on inst));
          Printf.sprintf "%.3f" (ratio (Core.Baselines.follow_demand inst));
          Printf.sprintf "%.3f" (ratio (Core.Baselines.receding_horizon ~window:3 inst)) ])
    traces;
  print_string "competitive ratios by trace family (lower is better; OPT = 1):\n\n";
  Core.Table.print tbl;
  print_string
    "\nreading: always-on wins only when the trace never idles; follow-demand\n\
     loses on bursty traces (pays switching every burst); algorithm A tracks\n\
     OPT within its guarantee everywhere.\n"
