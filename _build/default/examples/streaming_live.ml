(* Streaming deployment: no instance, no horizon — create a session with
   the fleet description and feed loads as they arrive.  Decisions are
   identical to the batch algorithm run on the same loads.

     dune exec examples/streaming_live.exe
*)

let () =
  let types =
    [| Core.Server_type.make ~name:"web" ~count:6 ~switching_cost:2. ~cap:1. ();
       Core.Server_type.make ~name:"batch" ~count:2 ~switching_cost:7. ~cap:4. () |]
  in
  let fns =
    [| Core.Fn.power ~idle:0.5 ~coef:0.7 ~expo:2.;
       Core.Fn.power ~idle:1.2 ~coef:0.4 ~expo:1.5 |]
  in
  let session = Core.Streaming.alg_a ~types ~fns () in
  print_endline "streaming session (algorithm A, 2d+1 = 5 guarantee):";
  print_endline " slot  load   -> web batch";
  (* Loads arrive one by one — in deployment this loop is the
     monitoring feed. *)
  let arrivals = [ 1.0; 2.5; 6.0; 9.5; 11.0; 7.0; 3.0; 1.0; 0.0; 0.0; 4.0; 8.0 ] in
  List.iteri
    (fun t load ->
      let x = Core.Streaming.feed session load in
      Printf.printf "  %2d   %5.1f ->  %d     %d\n" t load x.(0) x.(1))
    arrivals;
  Printf.printf "%d slots served; current config %s\n"
    (Core.Streaming.fed session)
    (Core.Config.to_string (Core.Streaming.config session));

  (* The guarantee is inherited from the batch algorithm: verify on this
     very stream by solving offline in hindsight. *)
  let load = Array.of_list arrivals in
  let inst = Core.Instance.make_static ~types ~load ~fns () in
  let batch = (Core.Alg_a.run inst).Core.Alg_a.schedule in
  let _, opt = Core.solve_offline inst in
  Printf.printf "hindsight: OPT %.2f, streamed cost %.2f (ratio %.3f <= 5)\n"
    opt
    (Core.Cost.schedule inst batch)
    (Core.Cost.schedule inst batch /. opt)
