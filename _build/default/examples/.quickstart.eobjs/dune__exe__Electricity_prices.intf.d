examples/electricity_prices.mli:
