examples/trace_comparison.ml: Core List Printf
