examples/fleet_planning.ml: Array Core List Printf
