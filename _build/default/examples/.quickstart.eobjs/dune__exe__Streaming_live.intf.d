examples/streaming_live.mli:
