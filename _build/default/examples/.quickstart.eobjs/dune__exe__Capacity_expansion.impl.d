examples/capacity_expansion.ml: Array Core List Printf
