examples/chasing_lower_bound.ml: Core List Printf
