examples/autoscaler_shootout.ml: Array Core List Printf
