examples/chasing_lower_bound.mli:
