examples/streaming_live.ml: Array Core List Printf
