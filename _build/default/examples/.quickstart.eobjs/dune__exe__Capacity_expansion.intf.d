examples/capacity_expansion.mli:
