examples/fleet_planning.mli:
