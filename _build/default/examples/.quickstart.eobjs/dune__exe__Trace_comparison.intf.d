examples/trace_comparison.mli:
