examples/quickstart.mli:
