examples/autoscaler_shootout.mli:
