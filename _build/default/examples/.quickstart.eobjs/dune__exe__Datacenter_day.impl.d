examples/datacenter_day.ml: Core Printf
