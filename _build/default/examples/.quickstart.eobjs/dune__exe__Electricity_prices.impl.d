examples/electricity_prices.ml: Array Core List Printf
