(* A two-day CPU+GPU scenario under a noisy diurnal load — the workload
   the paper's introduction motivates: deep night-time valleys where
   right-sizing saves energy, and morning ramps where switching costs
   punish eager power-downs.

     dune exec examples/datacenter_day.exe
*)

let () =
  let inst = Core.Scenarios.cpu_gpu ~horizon:48 ~seed:42 () in
  let horizon = Core.Instance.horizon inst in
  Printf.printf "CPU+GPU data center, %d slots\n" horizon;
  Printf.printf "load: %s\n\n" (Core.Ascii_plot.sparkline inst.Core.Instance.load);

  (* Offline optimum and the online algorithm. *)
  let optimal, opt_cost = Core.solve_offline inst in
  let a = Core.Alg_a.run inst in
  let online_cost = Core.Cost.schedule inst a.Core.Alg_a.schedule in

  let series typ glyph_opt glyph_a =
    [ { Core.Ascii_plot.label = "optimal"; glyph = glyph_opt;
        values = Core.Schedule.column optimal ~typ };
      { Core.Ascii_plot.label = "algorithm A"; glyph = glyph_a;
        values = Core.Schedule.column a.Core.Alg_a.schedule ~typ } ]
  in
  print_string "CPU servers (o = optimal, # = online):\n";
  print_string (Core.Ascii_plot.step_series (series 0 'o' '#'));
  print_string "\nGPU servers (o = optimal, # = online):\n";
  print_string (Core.Ascii_plot.step_series (series 1 'o' '#'));

  (* Cost breakdown. *)
  let tbl = Core.Table.create ~header:[ "policy"; "operating"; "switching"; "total"; "ratio" ] in
  let add name schedule =
    let op = Core.Cost.schedule_operating inst schedule in
    let sw = Core.Cost.schedule_switching inst schedule in
    Core.Table.add_row tbl
      [ name;
        Printf.sprintf "%.2f" op;
        Printf.sprintf "%.2f" sw;
        Printf.sprintf "%.2f" (op +. sw);
        Printf.sprintf "%.3f" ((op +. sw) /. opt_cost) ]
  in
  add "OPT" optimal;
  add "alg-A" a.Core.Alg_a.schedule;
  add "always-on" (Core.Baselines.always_on inst);
  add "follow-demand" (Core.Baselines.follow_demand inst);
  print_newline ();
  Core.Table.print tbl;
  Printf.printf "\nonline ratio %.3f (guarantee: 2d + 1 = 5)\n" (online_cost /. opt_cost)
