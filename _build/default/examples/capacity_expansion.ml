(* Time-varying data-center sizes (Section 4.3): a maintenance window
   takes most of rack A offline mid-horizon while rack B is expanded
   late.  The offline solver plans around both events; the
   (1+eps)-approximation stays within its bound.

     dune exec examples/capacity_expansion.exe
*)

let () =
  let inst = Core.Scenarios.maintenance ~horizon:30 () in
  let horizon = Core.Instance.horizon inst in
  Printf.printf "maintenance + expansion scenario, %d slots\n" horizon;
  Printf.printf "load:   %s\n" (Core.Ascii_plot.sparkline inst.Core.Instance.load);
  print_string "avail:  rack-a capped at 2 during slots 10-14; rack-b grows 2 -> 4 at slot 20\n\n";

  let optimal, opt_cost = Core.solve_offline inst in
  Printf.printf "optimal cost: %.3f\n\n" opt_cost;
  let tbl = Core.Table.create ~header:[ "t"; "load"; "m_a"; "x_a"; "m_b"; "x_b" ] in
  Array.iteri
    (fun t x ->
      Core.Table.add_row tbl
        [ string_of_int t;
          Printf.sprintf "%.1f" inst.Core.Instance.load.(t);
          string_of_int (inst.Core.Instance.avail ~time:t ~typ:0);
          string_of_int x.(0);
          string_of_int (inst.Core.Instance.avail ~time:t ~typ:1);
          string_of_int x.(1) ])
    optimal;
  Core.Table.print tbl;

  print_newline ();
  List.iter
    (fun eps ->
      let _, cost = Core.solve_approx ~eps inst in
      Printf.printf "(1+%g)-approximation: cost %.3f (bound %.3f)\n" eps cost
        ((1. +. eps) *. opt_cost))
    [ 1.0; 0.5; 0.1 ];

  (* The maintenance window really binds: during slots 10-14 rack A never
     exceeds its reduced availability. *)
  let binding = ref 0 in
  for t = 10 to 14 do
    if optimal.(t).(0) = 2 then incr binding
  done;
  Printf.printf "\nslots where the maintenance cap binds exactly: %d of 5\n" !binding
