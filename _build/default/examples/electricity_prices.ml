(* Time-dependent operating costs (Section 3): electricity is cheap at
   night and expensive during the day, so the *same* idle server costs
   different amounts per slot.  Algorithm A does not apply; algorithm B
   achieves 2d + 1 + c(I) and algorithm C squeezes the constant below
   any eps by sub-slot refinement.

     dune exec examples/electricity_prices.exe
*)

let () =
  let inst = Core.Scenarios.time_varying_costs ~horizon:36 () in
  let d = Core.Instance.num_types inst in
  Printf.printf "time-varying electricity prices, %d slots, %d types\n\n"
    (Core.Instance.horizon inst) d;
  Printf.printf "load:        %s\n" (Core.Ascii_plot.sparkline inst.Core.Instance.load);
  let idle_curve =
    Array.init (Core.Instance.horizon inst) (fun time ->
        Core.Instance.idle_cost inst ~time ~typ:0)
  in
  Printf.printf "idle cost:   %s  (type 0; follows the price of power)\n\n"
    (Core.Ascii_plot.sparkline idle_curve);

  let opt = Core.Harness.opt_cost inst in
  let b = Core.Alg_b.run inst in
  let b_cost = Core.Cost.schedule inst b.Core.Alg_b.schedule in
  Printf.printf "OPT                 : %8.3f\n" opt;
  Printf.printf "algorithm B         : %8.3f  (ratio %.4f, guarantee %.3f)\n" b_cost
    (b_cost /. opt)
    (Core.Harness.competitive_bound inst ~algorithm:`B);

  List.iter
    (fun eps ->
      let c = Core.Alg_c.run ~eps inst in
      let c_cost = Core.Cost.schedule inst c.Core.Alg_c.schedule in
      let sub_slots = Array.fold_left ( + ) 0 c.Core.Alg_c.parts in
      Printf.printf
        "algorithm C eps=%-4g: %8.3f  (ratio %.4f, guarantee %.3f; %d sub-slots, c(I~)=%.4f)\n"
        eps c_cost (c_cost /. opt)
        ((2. *. float_of_int d) +. 1. +. eps)
        sub_slots c.Core.Alg_c.c_refined)
    [ 1.0; 0.5; 0.1 ];

  (* B's power-down times react to the price: servers started in cheap
     hours run longer (their idle budget beta drains slower). *)
  print_newline ();
  print_string "algorithm B trajectories (o = on-site type, + = burst pool):\n";
  print_string
    (Core.Ascii_plot.step_series
       [ { Core.Ascii_plot.label = "on-site servers"; glyph = 'o';
           values = Core.Schedule.column b.Core.Alg_b.schedule ~typ:0 };
         { Core.Ascii_plot.label = "burst-pool servers"; glyph = '+';
           values = Core.Schedule.column b.Core.Alg_b.schedule ~typ:1 } ])
