(* Quickstart: define a small heterogeneous data center, solve it offline,
   and run the paper's online algorithm on the same workload.

     dune exec examples/quickstart.exe
*)

let () =
  (* Two server types: four small machines (cheap to start, capacity 1)
     and two big ones (expensive to start, capacity 3). *)
  let types =
    [| Core.Server_type.make ~name:"small" ~count:4 ~switching_cost:2. ~cap:1. ();
       Core.Server_type.make ~name:"big" ~count:2 ~switching_cost:6. ~cap:3. () |]
  in
  (* Energy curves: idle draw plus a superlinear load term ([6, 32]). *)
  let fns =
    [| Core.Fn.power ~idle:0.4 ~coef:0.6 ~expo:2.;
       Core.Fn.power ~idle:1.0 ~coef:0.3 ~expo:1.5 |]
  in
  (* A little day: quiet, busy, quiet. *)
  let load = [| 1.; 2.; 5.; 8.; 7.; 3.; 1.; 0.5; 0.; 2.; 4.; 1. |] in
  let inst = Core.Instance.make_static ~types ~load ~fns () in

  (* Offline optimum (Section 4.1). *)
  let optimal, opt_cost = Core.solve_offline inst in
  Printf.printf "offline optimum: cost %.3f\n" opt_cost;
  Array.iteri
    (fun t x ->
      Printf.printf "  slot %2d: load %4.1f -> %d small + %d big\n" t load.(t) x.(0) x.(1))
    optimal;

  (* The online algorithm (Section 2: time-independent costs -> A). *)
  let online, online_cost = Core.run_online inst in
  Printf.printf "\nonline algorithm A: cost %.3f (ratio %.3f, guarantee %g)\n" online_cost
    (online_cost /. opt_cost)
    (Core.Harness.competitive_bound inst ~algorithm:`A);
  Array.iteri
    (fun t x -> Printf.printf "  slot %2d: %d small + %d big\n" t x.(0) x.(1))
    online;

  (* A (1 + eps)-approximation of the offline optimum (Section 4.2). *)
  let _, approx_cost = Core.solve_approx ~eps:0.1 inst in
  Printf.printf "\n(1+0.1)-approximation: cost %.3f (<= %.3f)\n" approx_cost
    (1.1 *. opt_cost)
