(* Capacity planning: the paper right-sizes the *schedule* given the
   fleet; this example right-sizes the *fleet* itself.  Candidate server
   models carry acquisition (capex) prices; the planner searches fleet
   compositions, pricing each with the paper's optimal offline schedule
   on a representative week of load.

     dune exec examples/fleet_planning.exe
*)

let () =
  let rng = Core.Prng.create 31 in
  let load =
    Core.Workload.clamp ~lo:0. ~hi:14.
      (Core.Workload.add
         (Core.Workload.diurnal ~noise:0.07 ~rng ~horizon:56 ~period:24 ~base:1. ~peak:10. ())
         (Core.Workload.bursty ~horizon:56 ~burst:2 ~gap:12 ~height:3. ()))
  in
  Printf.printf "representative load (%d slots): %s\n\n" (Array.length load)
    (Core.Ascii_plot.sparkline load);

  let candidate name ~count ~capex ~beta ~cap ~idle ~coef =
    { Core.Fleet_planner.server =
        Core.Server_type.make ~name ~count ~switching_cost:beta ~cap ();
      capex;
      fn = Core.Fn.power ~idle ~coef ~expo:2. }
  in
  (* Three models on the market: cheap small boxes, efficient mid-range,
     big accelerators with a high sticker price. *)
  let candidates =
    [| candidate "small-box" ~count:10 ~capex:4. ~beta:1.5 ~cap:1. ~idle:0.6 ~coef:0.8;
       candidate "mid-range" ~count:6 ~capex:9. ~beta:3. ~cap:2. ~idle:0.8 ~coef:0.5;
       candidate "accelerator" ~count:3 ~capex:25. ~beta:8. ~cap:5. ~idle:1.6 ~coef:0.3 |]
  in
  let plan = Core.Fleet_planner.optimize ~candidates ~load () in
  Printf.printf "optimal fleet (over %d priced candidates%s):\n" plan.Core.Fleet_planner.evaluated
    (if plan.Core.Fleet_planner.exhaustive then ", exhaustive search" else "");
  Array.iteri
    (fun j n ->
      Printf.printf "  %-12s x %d  (of up to %d)\n"
        candidates.(j).Core.Fleet_planner.server.Core.Server_type.name n
        candidates.(j).Core.Fleet_planner.server.Core.Server_type.count)
    plan.Core.Fleet_planner.counts;
  Printf.printf "  capex %.1f + operating %.2f = %.2f\n\n" plan.Core.Fleet_planner.capex
    plan.Core.Fleet_planner.operating plan.Core.Fleet_planner.total;

  (* Compare against two naive plans. *)
  let priced counts =
    let types =
      Array.mapi
        (fun j c -> Core.Server_type.with_count c.Core.Fleet_planner.server counts.(j))
        candidates
    in
    let fns = Array.map (fun c -> c.Core.Fleet_planner.fn) candidates in
    let inst = Core.Instance.make_static ~types ~load ~fns () in
    let capex =
      Array.to_list (Array.mapi (fun j n -> float_of_int n *. candidates.(j).Core.Fleet_planner.capex) counts)
      |> List.fold_left ( +. ) 0.
    in
    capex +. snd (Core.solve_offline inst)
  in
  Printf.printf "naive all-small  (14 boxes needed): total %.2f\n" (priced [| 10; 2; 0 |]);
  Printf.printf "naive all-big    (3 accelerators) : total %.2f\n" (priced [| 0; 0; 3 |]);
  Printf.printf "planner's mix                      : total %.2f\n" plan.Core.Fleet_planner.total
