(* Why the paper restricts the cost structure: general discrete convex
   function chasing (arbitrary convex g_t over {0,1}^d) admits no online
   algorithm with a sub-exponential competitive ratio.  This example
   simulates the paper's hypercube adversary from the related-work
   section and prints the separation.

     dune exec examples/chasing_lower_bound.exe
*)

let () =
  print_string
    "Hypercube adversary: every slot, the online player's current vertex\n\
     becomes infinitely expensive; after 2^d - 1 slots the offline player\n\
     has jumped once to a never-forbidden vertex.\n\n";
  let tbl =
    Core.Table.create ~header:[ "d"; "slots"; "online"; "offline"; "ratio"; "2^d/d" ]
  in
  List.iter
    (fun d ->
      let o = Core.Adversary.chasing_lower_bound ~d in
      Core.Table.add_row tbl
        [ string_of_int d;
          string_of_int o.Core.Adversary.steps;
          Printf.sprintf "%.0f" o.Core.Adversary.online_cost;
          Printf.sprintf "%.0f" o.Core.Adversary.offline_cost;
          Printf.sprintf "%.1f" o.Core.Adversary.ratio;
          Printf.sprintf "%.1f" (float_of_int (1 lsl d) /. float_of_int d) ])
    [ 2; 3; 4; 6; 8; 10; 12; 14 ];
  Core.Table.print tbl;
  print_string
    "\nthe ratio explodes exponentially — whereas for operating costs of the\n\
     paper's form (eq. (1)) algorithm A achieves 2d + 1.  Compare:\n";
  let inst = Core.Scenarios.cpu_gpu ~horizon:24 () in
  let _, cost = Core.run_online inst in
  Printf.printf "  cpu-gpu scenario (d = 2): online ratio %.3f <= 5\n"
    (cost /. Core.Harness.opt_cost inst)
